"""Per-stage register arrays.

Registers are the stateful memory of an RMT pipeline: a register array lives
in one stage, holds ``size`` entries of ``width`` bits, and is read-modify-
written by at most one ALU action per packet traversal.  SpliDT's feature
slots, reserved state (subtree id, packet count) and dependency-chain
intermediates are all register arrays.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class RegisterArray:
    """A register array bound to one pipeline stage.

    Attributes:
        name: Register name (e.g. ``"feature_slot_0"`` or ``"sid"``).
        size: Number of entries (one per tracked flow slot).
        width: Entry width in bits.
        stage: Pipeline stage index hosting the array.
    """

    name: str
    size: int
    width: int
    stage: int = 0
    _values: np.ndarray = field(init=False, repr=False)
    reads: int = field(default=0, init=False)
    writes: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ValueError("size must be >= 1")
        if self.width < 1 or self.width > 64:
            raise ValueError("width must be in [1, 64]")
        self._values = np.zeros(self.size, dtype=np.float64)
        # Hot on both replay paths (one saturation per register write), so it
        # is computed once here instead of re-deriving 2**width per access.
        self._max_value = float(2**self.width - 1)

    @property
    def max_value(self) -> float:
        """Largest representable value (saturating arithmetic)."""
        return self._max_value

    @property
    def total_bits(self) -> int:
        """Total memory footprint in bits."""
        return self.size * self.width

    def read(self, index: int) -> float:
        """Read the entry at ``index``."""
        self._check_index(index)
        self.reads += 1
        return float(self._values[index])

    def write(self, index: int, value: float) -> None:
        """Write ``value`` (saturating at the register width) to ``index``."""
        self._check_index(index)
        self.writes += 1
        self._values[index] = min(max(float(value), 0.0), self._max_value)

    def add(self, index: int, delta: float) -> float:
        """Saturating add; returns the new value."""
        new_value = min(self.read(index) + delta, self.max_value)
        self.write(index, new_value)
        return new_value

    def maximum(self, index: int, candidate: float) -> float:
        """Register-max update; returns the new value."""
        new_value = max(self.read(index), min(candidate, self.max_value))
        self.write(index, new_value)
        return new_value

    def clear(self, index: int) -> None:
        """Reset one entry to zero (SpliDT's per-window register clear)."""
        self.write(index, 0.0)

    # ------------------------------------------------------------------
    # Batched access (vectorized replay engine)
    # ------------------------------------------------------------------
    def read_many(self, indices: np.ndarray) -> np.ndarray:
        """Read many entries at once; counts one read per entry."""
        indices = self._check_indices(indices)
        self.reads += len(indices)
        return self._values[indices].astype(np.float64)

    def write_many(self, indices: np.ndarray, values: np.ndarray) -> None:
        """Write many entries at once, saturating at the register width.

        Semantically equivalent to calling :meth:`write` once per
        ``(index, value)`` pair (last write wins on duplicate indices), but
        performed as a single NumPy scatter; counts one write per entry.
        """
        indices = self._check_indices(indices)
        self.writes += len(indices)
        self._values[indices] = np.clip(np.asarray(values, dtype=np.float64), 0.0, self._max_value)

    def clear_many(self, indices: np.ndarray) -> None:
        """Reset many entries to zero (batched per-window register clear)."""
        indices = self._check_indices(indices)
        self.writes += len(indices)
        self._values[indices] = 0.0

    def clear_all(self) -> None:
        """Reset the whole array."""
        self._values[:] = 0.0

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.size:
            raise IndexError(f"register index {index} out of range [0, {self.size})")

    def _check_indices(self, indices: np.ndarray) -> np.ndarray:
        indices = np.asarray(indices, dtype=np.intp)
        if indices.size and (indices.min() < 0 or indices.max() >= self.size):
            raise IndexError(f"register indices out of range [0, {self.size})")
        return indices


# ----------------------------------------------------------------------
# Collision-slot eviction policies
# ----------------------------------------------------------------------
class EvictionPolicy:
    """Decides whether a colliding packet may evict a slot's resident flow.

    A register slot holds the state of at most one flow.  When a packet of a
    *different* five-tuple hashes to a slot whose resident flow is still
    undecided, the data plane either lets the packet corrupt the resident's
    state (the hardware-faithful default: no policy) or — under one of these
    policies — destroys the resident's state and admits the newcomer.  The
    evicted flow never receives a verdict from its destroyed state; its own
    later packets re-enter the pipeline as a brand-new flow.

    Policies are pure functions of the two timestamps involved, so every
    replay engine reaches identical eviction decisions (the parity fuzzer
    locks this down).  Ties keep the resident: a deterministic rule a switch
    can implement with a single comparison, and the conservative choice
    (state already paid for stays).
    """

    name: str = "none"

    def should_evict(self, *, resident_last_seen: float, incoming_ts: float) -> bool:
        """Whether the incoming packet evicts the undecided resident."""
        raise NotImplementedError


@dataclass(frozen=True)
class IdleTimeoutEviction(EvictionPolicy):
    """Evict the resident once its slot has been idle longer than ``timeout``.

    Mirrors the idle-timeout ageing of hardware flow tables: the resident is
    evicted iff ``incoming_ts - resident_last_seen > timeout`` (strictly —
    a packet landing exactly at the timeout keeps the resident).
    """

    timeout: float = 1.0
    name: str = "idle-timeout"

    def __post_init__(self) -> None:
        if self.timeout < 0.0:
            raise ValueError(f"timeout must be >= 0, got {self.timeout}")

    def should_evict(self, *, resident_last_seen: float, incoming_ts: float) -> bool:
        return incoming_ts - resident_last_seen > self.timeout


@dataclass(frozen=True)
class LruEviction(EvictionPolicy):
    """Approximate LRU: the newcomer is by definition more recently used.

    Evicts iff the resident was last seen strictly *before* the incoming
    packet; an exact timestamp tie keeps the resident (deterministic, and
    what a single ``<`` comparator yields on hardware).
    """

    name: str = "lru"

    def should_evict(self, *, resident_last_seen: float, incoming_ts: float) -> bool:
        return resident_last_seen < incoming_ts


#: Eviction policy names accepted by :func:`make_eviction_policy`.
EVICTION_POLICIES = ("none", "idle-timeout", "lru")


def make_eviction_policy(name: str, *, timeout: float = 1.0) -> EvictionPolicy | None:
    """Build an eviction policy by name (``"none"`` → ``None``).

    Example::

        >>> make_eviction_policy("idle-timeout", timeout=0.5).timeout
        0.5
        >>> make_eviction_policy("none") is None
        True
    """
    if name == "none":
        return None
    if name == "idle-timeout":
        return IdleTimeoutEviction(timeout=timeout)
    if name == "lru":
        return LruEviction()
    raise ValueError(
        f"unknown eviction policy {name!r}; expected one of {EVICTION_POLICIES}"
    )


@dataclass
class RegisterFile:
    """The set of register arrays a program allocates, grouped by role.

    SpliDT's data-plane program uses three groups (Figure 4 of the paper):
    reserved state (SID + packet count), the dependency chain, and the ``k``
    feature slots.
    """

    arrays: dict[str, RegisterArray] = field(default_factory=dict)

    def allocate(self, name: str, *, size: int, width: int, stage: int = 0) -> RegisterArray:
        """Allocate (and register) a new array; names must be unique."""
        if name in self.arrays:
            raise ValueError(f"register array {name!r} already allocated")
        array = RegisterArray(name=name, size=size, width=width, stage=stage)
        self.arrays[name] = array
        return array

    def __getitem__(self, name: str) -> RegisterArray:
        return self.arrays[name]

    def __contains__(self, name: str) -> bool:
        return name in self.arrays

    @property
    def total_bits(self) -> int:
        """Total register bits across all arrays."""
        return sum(array.total_bits for array in self.arrays.values())

    def bits_per_flow(self) -> int:
        """Register bits consumed per flow slot (sum of array widths)."""
        return sum(array.width for array in self.arrays.values())

    def stages_used(self) -> set[int]:
        """Pipeline stages touched by at least one array."""
        return {array.stage for array in self.arrays.values()}

    def clear_flow(self, index: int, names: list[str] | None = None) -> None:
        """Clear one flow's entry in the named arrays (default: all arrays)."""
        targets = names if names is not None else list(self.arrays)
        for name in targets:
            self.arrays[name].clear(index)

    def clear_flows(self, indices: np.ndarray, names: list[str] | None = None) -> None:
        """Clear many flows' entries in the named arrays (default: all)."""
        targets = names if names is not None else list(self.arrays)
        for name in targets:
            self.arrays[name].clear_many(indices)
