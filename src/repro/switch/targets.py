"""Hardware target specifications.

The paper evaluates against an Intel Tofino1 (Edgecore Wedge 100-32X) and
frames feasibility in terms of that target's budgets: 12 match-action stages,
a 6.4 Mbit TCAM budget, register (SRAM) space shared with tables per stage,
and a 100 Gbps recirculation path.  Additional targets (Tofino2, Trident4,
BlueField-3 DPU) are included because the DSE framework accepts any
:class:`TargetSpec` as its constraint set.

The numbers are public-datasheet-scale approximations — the reproduction only
relies on their relative magnitudes (stage count, TCAM bits, register bits per
stage), which is also all the paper's analytical feasibility model uses.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TargetSpec:
    """Resource envelope of one programmable data-plane target.

    Attributes:
        name: Target name.
        n_stages: Match-action pipeline stages available to the program.
        tcam_bits: Total TCAM capacity in bits.
        sram_bits_per_stage: SRAM available per stage (registers share this).
        register_bits_per_stage: Portion of a stage's SRAM usable as register
            arrays for per-flow state.
        max_mats_per_stage: Parallel MATs a single stage can host.
        max_entries_per_mat: Entry budget per logical MAT.
        tcam_entry_overhead_bits: Per-entry key/action overhead added on top
            of the match-key width.
        recirculation_bps: Recirculation / resubmission path bandwidth.
        phv_bits: Packet-header-vector capacity.
        max_dependency_stages: Longest register dependency chain supported.
    """

    name: str
    n_stages: int
    tcam_bits: float
    sram_bits_per_stage: float
    register_bits_per_stage: float
    max_mats_per_stage: int
    max_entries_per_mat: int
    tcam_entry_overhead_bits: int
    recirculation_bps: float
    phv_bits: int
    max_dependency_stages: int


#: Intel Tofino1 — the paper's primary target (6.4 Mbit TCAM, 12 stages).
TOFINO1 = TargetSpec(
    name="Tofino1",
    n_stages=12,
    tcam_bits=6.4e6,
    sram_bits_per_stage=1.28e7,
    register_bits_per_stage=1.2e7,
    max_mats_per_stage=16,
    max_entries_per_mat=750,
    tcam_entry_overhead_bits=16,
    recirculation_bps=100e9,
    phv_bits=4096,
    max_dependency_stages=4,
)

#: Intel Tofino2 — double the stages and memory of Tofino1.
TOFINO2 = TargetSpec(
    name="Tofino2",
    n_stages=20,
    tcam_bits=1.28e7,
    sram_bits_per_stage=2.56e7,
    register_bits_per_stage=2.4e7,
    max_mats_per_stage=16,
    max_entries_per_mat=1500,
    tcam_entry_overhead_bits=16,
    recirculation_bps=200e9,
    phv_bits=8192,
    max_dependency_stages=6,
)

#: Broadcom Trident4-class programmable switch.
TRIDENT4 = TargetSpec(
    name="Trident4",
    n_stages=16,
    tcam_bits=8.0e6,
    sram_bits_per_stage=1.6e7,
    register_bits_per_stage=5.0e6,
    max_mats_per_stage=12,
    max_entries_per_mat=1000,
    tcam_entry_overhead_bits=16,
    recirculation_bps=100e9,
    phv_bits=4096,
    max_dependency_stages=4,
)

#: AMD Pensando / NVIDIA BlueField-3 class SmartNIC (fewer flows per register stage).
BLUEFIELD3 = TargetSpec(
    name="BlueField3",
    n_stages=10,
    tcam_bits=4.0e6,
    sram_bits_per_stage=8.0e6,
    register_bits_per_stage=2.5e6,
    max_mats_per_stage=8,
    max_entries_per_mat=512,
    tcam_entry_overhead_bits=16,
    recirculation_bps=50e9,
    phv_bits=2048,
    max_dependency_stages=4,
)

#: All built-in targets, keyed by lower-case name.
TARGETS: dict[str, TargetSpec] = {
    "tofino1": TOFINO1,
    "tofino2": TOFINO2,
    "trident4": TRIDENT4,
    "bluefield3": BLUEFIELD3,
}


def get_target(name: str) -> TargetSpec:
    """Look up a built-in target by (case-insensitive) name."""
    key = name.lower()
    try:
        return TARGETS[key]
    except KeyError as exc:
        raise KeyError(f"unknown target {name!r}; expected one of {tuple(TARGETS)}") from exc
