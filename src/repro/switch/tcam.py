"""Ternary content-addressable memory (TCAM) model.

TCAM entries match a key against a (value, mask) pair: bits where the mask is
0 are wildcards.  Range-marking rules and the DT model table both compile to
TCAM entries; the model here supports priority-ordered lookup and reports the
bit cost used by the resource estimator.

The module also provides the classic prefix-expansion of an integer range
into ternary (value, mask) pairs, which is what the range-marking algorithm
uses to turn feature thresholds into TCAM rules.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class TernaryMatch:
    """One ternary key: ``key & mask == value & mask``."""

    value: int
    mask: int

    def matches(self, key: int) -> bool:
        """Whether ``key`` matches this value/mask pair."""
        return (key & self.mask) == (self.value & self.mask)


@dataclass
class TcamEntry:
    """A TCAM entry: per-field ternary matches, a priority and an action.

    Attributes:
        fields: Mapping from field name to its ternary match.
        priority: Higher priority wins when multiple entries match.
        action: Action name (e.g. ``"set_mark"``, ``"set_next_sid"``).
        action_data: Parameters of the action (e.g. the mark value).
    """

    fields: dict[str, TernaryMatch]
    priority: int
    action: str
    action_data: dict = field(default_factory=dict)

    def matches(self, key: dict[str, int]) -> bool:
        """Whether every field of ``key`` satisfies the entry's ternary matches."""
        for name, match in self.fields.items():
            if name not in key or not match.matches(key[name]):
                return False
        return True


@dataclass
class TcamTable:
    """A priority-ordered ternary table.

    Attributes:
        name: Table name.
        key_fields: Mapping from field name to its width in bits.
    """

    name: str
    key_fields: dict[str, int]
    entries: list[TcamEntry] = field(default_factory=list)
    lookups: int = field(default=0, init=False)
    hits: int = field(default=0, init=False)

    def add_entry(self, entry: TcamEntry) -> None:
        """Install an entry (kept sorted by descending priority)."""
        for name in entry.fields:
            if name not in self.key_fields:
                raise ValueError(f"field {name!r} not part of table {self.name!r} key")
        self.entries.append(entry)
        self.entries.sort(key=lambda e: -e.priority)

    def lookup(self, key: dict[str, int]) -> TcamEntry | None:
        """Highest-priority matching entry, or ``None`` on a miss."""
        self.lookups += 1
        for entry in self.entries:
            if entry.matches(key):
                self.hits += 1
                return entry
        return None

    @property
    def n_entries(self) -> int:
        """Number of installed entries."""
        return len(self.entries)

    @property
    def key_width_bits(self) -> int:
        """Total match-key width in bits."""
        return sum(self.key_fields.values())

    def memory_bits(self, entry_overhead_bits: int = 0) -> int:
        """TCAM bits consumed: (key + mask + overhead) per entry."""
        per_entry = 2 * self.key_width_bits + entry_overhead_bits
        return per_entry * self.n_entries


def range_to_ternary(low: int, high: int, width: int) -> list[TernaryMatch]:
    """Expand the inclusive integer range ``[low, high]`` into ternary matches.

    This is standard prefix expansion: the range is covered by the minimal set
    of aligned power-of-two blocks, each of which is one (value, mask) pair.
    ``width`` bounds the key width; values outside ``[0, 2**width - 1]`` are
    clipped.
    """
    if width < 1:
        raise ValueError("width must be >= 1")
    max_value = (1 << width) - 1
    low = max(0, min(low, max_value))
    high = max(0, min(high, max_value))
    if high < low:
        return []

    matches = []
    cursor = low
    while cursor <= high:
        # Largest aligned block starting at cursor that stays within the range.
        block = 1
        while True:
            next_block = block * 2
            if cursor % next_block != 0:
                break
            if cursor + next_block - 1 > high:
                break
            block = next_block
        mask = max_value & ~(block - 1)
        matches.append(TernaryMatch(value=cursor, mask=mask))
        cursor += block
    return matches
