"""Shared fixtures for the test suite.

Expensive artefacts (synthetic datasets, materialised windows, trained
models, compiled rules) are session-scoped so the several hundred tests that
consume them stay fast.
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np
import pytest

# Allow running the tests without an editable install.
_SRC = Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro import core, datasets  # noqa: E402
from repro.core.range_marking import generate_rules, stacked_training_matrix  # noqa: E402


@pytest.fixture(scope="session")
def small_dataset():
    """A small D3 (VPN-detection-like) dataset: 360 flows, 13 classes."""
    return datasets.load_dataset("D3", n_flows=360, seed=11)


@pytest.fixture(scope="session")
def dataset_store(small_dataset):
    """Dataset store over the small dataset."""
    return datasets.DatasetStore(small_dataset, random_state=11)


@pytest.fixture(scope="session")
def windowed3(dataset_store):
    """The small dataset materialised into 3 windows."""
    return dataset_store.fetch(3)


@pytest.fixture(scope="session")
def splidt_config():
    """A modest partitioned-tree configuration (D=6, k=4, 3 partitions)."""
    return core.SpliDTConfig(depth=6, features_per_subtree=4, partition_sizes=(2, 2, 2))


@pytest.fixture(scope="session")
def splidt_model(windowed3, splidt_config):
    """A trained partitioned tree on the small dataset."""
    return core.train_partitioned_tree(windowed3, splidt_config, random_state=3)


@pytest.fixture(scope="session")
def splidt_rules(splidt_model, windowed3):
    """Compiled TCAM rules of the trained partitioned tree."""
    return generate_rules(splidt_model, stacked_training_matrix(windowed3, 3))


@pytest.fixture(scope="session")
def classification_data():
    """A simple, well-separated synthetic classification problem."""
    rng = np.random.default_rng(0)
    n_per_class = 80
    X0 = rng.normal(loc=[0, 0, 0, 5], scale=1.0, size=(n_per_class, 4))
    X1 = rng.normal(loc=[4, 0, 0, 0], scale=1.0, size=(n_per_class, 4))
    X2 = rng.normal(loc=[0, 4, 4, 0], scale=1.0, size=(n_per_class, 4))
    X = np.vstack([X0, X1, X2])
    y = np.repeat([0, 1, 2], n_per_class)
    return X, y
