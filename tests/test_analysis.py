"""Unit tests for the reporting/analysis helpers."""

from __future__ import annotations

import numpy as np

from repro.analysis import (
    format_pareto_table,
    format_recirculation_table,
    format_timings_table,
    render_table,
    summarize_ttd,
)
from repro.core.dse import StageTimings


class TestRenderTable:
    def test_contains_headers_and_rows(self):
        text = render_table(["a", "b"], [["1", "2"], ["3", "4"]])
        assert "a" in text and "b" in text
        assert "3" in text and "4" in text
        assert len(text.splitlines()) == 4

    def test_column_alignment(self):
        text = render_table(["name", "v"], [["x", "1"], ["longer", "2"]])
        lines = text.splitlines()
        assert len(set(line.index("1") if "1" in line else len(lines[0]) for line in lines[2:3])) == 1


class TestFormatters:
    def test_pareto_table(self):
        table = format_pareto_table(
            {"SpliDT": {100_000: 0.85, 1_000_000: 0.59}, "NetBeacon": {100_000: 0.78}}
        )
        assert "SpliDT" in table
        assert "0.850" in table
        assert "-" in table  # missing NetBeacon value at 1M

    def test_recirculation_table(self):
        table = format_recirculation_table(
            {"WS": {"D3": {100_000: 1.0, 500_000: 12.2, 1_000_000: 19.5}}}
        )
        assert "WS" in table and "D3" in table and "12.2" in table

    def test_timings_table(self):
        timings = {"D3": StageTimings(fetch=0.1, training=1.0, optimizer=0.2, rulegen=0.05, backend=0.01)}
        table = format_timings_table(timings)
        assert "Training" in table
        assert "Total" in table


class TestSummarizeTtd:
    def test_summary_statistics(self):
        values = np.array([1.0, 2.0, 3.0, 4.0, 100.0])
        summary = summarize_ttd(values)
        assert summary["median"] == 3.0
        assert summary["max"] == 100.0
        assert summary["p90"] >= summary["median"]
        assert summary["p99"] >= summary["p90"]

    def test_empty(self):
        summary = summarize_ttd(np.array([]))
        assert summary["mean"] == 0.0
