"""Tests for the flow-size spoofing robustness analysis (paper §6)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import evaluate_flow_size_spoofing


@pytest.fixture(scope="module")
def spoofing_results(splidt_model, splidt_rules, small_dataset):
    subset = small_dataset.subset(np.arange(60))
    return evaluate_flow_size_spoofing(
        splidt_model, splidt_rules, subset, scales=(1.0, 0.5, 4.0)
    )


class TestFlowSizeSpoofing:
    def test_one_result_per_scale(self, spoofing_results):
        assert [r.scale for r in spoofing_results] == [1.0, 0.5, 4.0]

    def test_honest_baseline_classifies_everything(self, spoofing_results):
        honest = spoofing_results[0]
        assert honest.decided_fraction == pytest.approx(1.0)
        assert honest.f1_score > 0.0

    def test_scores_bounded(self, spoofing_results):
        for result in spoofing_results:
            assert 0.0 <= result.f1_score <= 1.0
            assert 0.0 <= result.decided_fraction <= 1.0

    def test_inflated_flow_size_hurts_or_delays(self, spoofing_results, splidt_model):
        honest, _, inflated = spoofing_results
        # Advertising a 4x larger flow pushes window boundaries past the real
        # flow end: either some flows never get a verdict or accuracy drops or
        # fewer partition transitions happen.
        degraded = (
            inflated.decided_fraction < honest.decided_fraction - 1e-9
            or inflated.f1_score <= honest.f1_score + 1e-9
            or inflated.mean_recirculations < honest.mean_recirculations
        )
        assert degraded

    def test_truncated_flow_size_changes_windows(self, spoofing_results, splidt_model):
        honest, truncated, _ = spoofing_results
        # With a 0.5x advertised size, boundaries fire after fewer packets, so
        # the subtrees see truncated windows; recirculation still happens.
        assert truncated.mean_recirculations <= splidt_model.n_partitions - 1
