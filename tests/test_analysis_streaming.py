"""Incremental accumulators (`repro.analysis.streaming`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.streaming import RollingReport, RollingTTD, WindowedErrorRate
from repro.analysis.ttd import summarize_ttd
from repro.core.evaluation import ClassificationReport


class TestRollingTTD:
    def test_matches_batch_summary(self):
        rng = np.random.default_rng(3)
        values = rng.uniform(0.0, 2.0, size=101)
        rolling = RollingTTD()
        for start in range(0, values.size, 7):
            rolling.update(values[start:start + 7])
        assert rolling.count == values.size
        assert rolling.summary() == summarize_ttd(values)

    def test_incremental_counters(self):
        rolling = RollingTTD()
        assert rolling.count == 0 and rolling.mean == 0.0 and rolling.max == 0.0
        rolling.update([0.5, 1.5])
        assert rolling.count == 2
        assert rolling.mean == 1.0
        assert rolling.max == 1.5

    def test_empty_summary_shape(self):
        summary = RollingTTD().summary()
        assert summary == {"median": 0.0, "mean": 0.0, "p90": 0.0, "p99": 0.0, "max": 0.0}

    def test_reset_returns_to_empty_state(self):
        rolling = RollingTTD()
        rolling.update([0.5, 1.5, 9.0])
        rolling.reset()
        assert rolling.count == 0 and rolling.mean == 0.0 and rolling.max == 0.0
        assert rolling.summary() == RollingTTD().summary()

    def test_rebind_after_reset_matches_fresh_accumulator(self):
        # After a reset the accumulator must behave exactly like a new one
        # bound to the second stream segment (no leakage of the old max).
        segment_a, segment_b = [4.0, 8.0], [0.25, 0.75, 1.25]
        rebound = RollingTTD()
        rebound.update(segment_a)
        rebound.reset()
        rebound.update(segment_b)
        fresh = RollingTTD()
        fresh.update(segment_b)
        assert rebound.summary() == fresh.summary()
        assert rebound.max == fresh.max == 1.25


class TestRollingReport:
    def test_matches_batch_report(self):
        rng = np.random.default_rng(7)
        y_true = rng.integers(0, 4, size=200)
        y_pred = rng.integers(0, 4, size=200)
        rolling = RollingReport()
        for t, p in zip(y_true, y_pred):
            rolling.update(int(t), int(p))
        batch = ClassificationReport.from_predictions(y_true, y_pred)
        report = rolling.report()
        assert rolling.n_samples == 200
        assert rolling.accuracy == batch.accuracy
        assert report.f1_score == batch.f1_score
        assert np.array_equal(report.confusion, batch.confusion)

    def test_running_accuracy(self):
        rolling = RollingReport()
        assert rolling.accuracy == 0.0
        rolling.update(1, 1)
        rolling.update(0, 1)
        assert rolling.accuracy == 0.5
        assert rolling.n_samples == 2

    def test_empty_report(self):
        report = RollingReport().report()
        assert report.n_samples == 0 and report.f1_score == 0.0

    def test_reset_returns_to_empty_state(self):
        rolling = RollingReport()
        rolling.update(1, 1)
        rolling.update(0, 1)
        rolling.reset()
        assert rolling.n_samples == 0 and rolling.accuracy == 0.0
        assert rolling.report().n_samples == 0

    def test_rebind_after_reset_matches_fresh_accumulator(self):
        rng = np.random.default_rng(11)
        y_true = rng.integers(0, 3, size=50)
        y_pred = rng.integers(0, 3, size=50)
        rebound = RollingReport()
        for _ in range(10):
            rebound.update(2, 0)  # old stream segment, all wrong
        rebound.reset()
        fresh = RollingReport()
        for t, p in zip(y_true, y_pred):
            rebound.update(int(t), int(p))
            fresh.update(int(t), int(p))
        assert rebound.accuracy == fresh.accuracy
        assert rebound.report().f1_score == fresh.report().f1_score
        assert np.array_equal(rebound.report().confusion, fresh.report().confusion)


class TestWindowedErrorRate:
    def test_matches_naive_window_rate(self):
        rng = np.random.default_rng(5)
        errors = rng.random(200) < 0.3
        windowed = WindowedErrorRate(window=16)
        for index, error in enumerate(errors):
            windowed.update(bool(error))
            recent = errors[max(0, index - 15): index + 1]
            assert windowed.rate == recent.sum() / recent.size
        assert windowed.count == 16

    def test_old_outcomes_age_out(self):
        windowed = WindowedErrorRate(window=2)
        windowed.update(True)
        windowed.update(True)
        assert windowed.rate == 1.0
        windowed.update(False)
        windowed.update(False)
        assert windowed.rate == 0.0

    def test_window_must_be_positive(self):
        with pytest.raises(ValueError, match="window"):
            WindowedErrorRate(window=0)

    def test_reset_empties_the_window(self):
        windowed = WindowedErrorRate(window=4)
        windowed.update(True)
        windowed.reset()
        assert windowed.count == 0 and windowed.rate == 0.0
