"""Incremental accumulators (`repro.analysis.streaming`)."""

from __future__ import annotations

import numpy as np

from repro.analysis.streaming import RollingReport, RollingTTD
from repro.analysis.ttd import summarize_ttd
from repro.core.evaluation import ClassificationReport


class TestRollingTTD:
    def test_matches_batch_summary(self):
        rng = np.random.default_rng(3)
        values = rng.uniform(0.0, 2.0, size=101)
        rolling = RollingTTD()
        for start in range(0, values.size, 7):
            rolling.update(values[start:start + 7])
        assert rolling.count == values.size
        assert rolling.summary() == summarize_ttd(values)

    def test_incremental_counters(self):
        rolling = RollingTTD()
        assert rolling.count == 0 and rolling.mean == 0.0 and rolling.max == 0.0
        rolling.update([0.5, 1.5])
        assert rolling.count == 2
        assert rolling.mean == 1.0
        assert rolling.max == 1.5

    def test_empty_summary_shape(self):
        summary = RollingTTD().summary()
        assert summary == {"median": 0.0, "mean": 0.0, "p90": 0.0, "p99": 0.0, "max": 0.0}


class TestRollingReport:
    def test_matches_batch_report(self):
        rng = np.random.default_rng(7)
        y_true = rng.integers(0, 4, size=200)
        y_pred = rng.integers(0, 4, size=200)
        rolling = RollingReport()
        for t, p in zip(y_true, y_pred):
            rolling.update(int(t), int(p))
        batch = ClassificationReport.from_predictions(y_true, y_pred)
        report = rolling.report()
        assert rolling.n_samples == 200
        assert rolling.accuracy == batch.accuracy
        assert report.f1_score == batch.f1_score
        assert np.array_equal(report.confusion, batch.confusion)

    def test_running_accuracy(self):
        rolling = RollingReport()
        assert rolling.accuracy == 0.0
        rolling.update(1, 1)
        rolling.update(0, 1)
        assert rolling.accuracy == 0.5
        assert rolling.n_samples == 2

    def test_empty_report(self):
        report = RollingReport().report()
        assert report.n_samples == 0 and report.f1_score == 0.0
