"""Unit tests for the NetBeacon, Leo and per-packet baselines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    NETBEACON_PHASES,
    leo_tcam_bits,
    leo_tcam_entries,
    netbeacon_tcam_cost,
    phase_for_packet_count,
    search_leo,
    search_netbeacon,
    search_per_packet,
    select_top_k_features,
    topk_per_flow_bits,
    train_per_packet_model,
    train_topk_model,
)
from repro.core.config import TopKConfig
from repro.features.definitions import FEATURES, STATELESS_INDICES
from repro.switch.targets import TOFINO1


class TestTopKSelection:
    def test_returns_k_features(self, windowed3):
        X = windowed3.flow_matrix("train")
        y = windowed3.split_labels("train")
        for k in (1, 3, 6):
            features = select_top_k_features(X, y, k)
            assert len(features) == k
            assert len(set(features)) == k

    def test_candidate_restriction(self, windowed3):
        X = windowed3.flow_matrix("train")
        y = windowed3.split_labels("train")
        features = select_top_k_features(X, y, 3, candidate_indices=tuple(STATELESS_INDICES))
        assert set(features) <= set(STATELESS_INDICES)

    def test_invalid_k(self, windowed3):
        with pytest.raises(ValueError):
            select_top_k_features(windowed3.flow_matrix("train"), windowed3.split_labels("train"), 0)


class TestTopKModel:
    def test_train_and_predict(self, windowed3):
        config = TopKConfig(depth=6, top_k=4)
        model = train_topk_model(windowed3, config)
        predictions = model.predict(windowed3.flow_matrix("test"))
        assert predictions.shape == (windowed3.test_indices.shape[0],)
        assert len(model.feature_indices) == 4
        assert model.features_used() <= set(model.feature_indices)

    def test_depth_respected(self, windowed3):
        model = train_topk_model(windowed3, TopKConfig(depth=3, top_k=4))
        assert model.depth <= 3

    def test_register_layout_counts_stateful_features_only(self, windowed3):
        model = train_topk_model(windowed3, TopKConfig(depth=5, top_k=4))
        stateful = [i for i in model.feature_indices if FEATURES[i].stateful]
        assert model.register_layout().feature_bits == 32 * len(stateful)

    def test_rules_generated(self, windowed3):
        model = train_topk_model(windowed3, TopKConfig(depth=5, top_k=4))
        rules = model.generate_rules(windowed3.flow_matrix("train"))
        assert rules.n_entries > 0
        assert rules.n_model_entries == model.n_leaves

    def test_per_flow_bits_formula(self):
        assert topk_per_flow_bits(4, bit_width=32, dependency_stages=0) >= 128

    def test_stateless_model_uses_only_stateless_features(self, windowed3):
        model = train_per_packet_model(windowed3, depth=6)
        assert set(model.feature_indices) <= set(STATELESS_INDICES)


class TestNetBeacon:
    def test_phases_exponential(self):
        assert list(NETBEACON_PHASES) == sorted(NETBEACON_PHASES)
        ratios = [b / a for a, b in zip(NETBEACON_PHASES, NETBEACON_PHASES[1:])]
        assert all(r == 2 for r in ratios)

    def test_phase_for_packet_count(self):
        assert phase_for_packet_count(1) == 0
        assert phase_for_packet_count(2) == 0
        assert phase_for_packet_count(3) == 1
        assert phase_for_packet_count(10_000) == len(NETBEACON_PHASES)

    def test_tcam_cost_positive(self, windowed3):
        model = train_topk_model(windowed3, TopKConfig(depth=6, top_k=4), name="netbeacon")
        entries, bits = netbeacon_tcam_cost(model, windowed3)
        assert entries > 0 and bits > 0

    def test_search_returns_feasible_candidate(self, windowed3):
        candidate = search_netbeacon(
            windowed3, target=TOFINO1, n_flows=100_000,
            k_range=(2, 4), depth_range=(4, 8),
        )
        assert candidate is not None
        assert candidate.feasible
        assert candidate.tcam_bits <= TOFINO1.tcam_bits

    def test_search_degrades_with_more_flows(self, windowed3):
        at_100k = search_netbeacon(
            windowed3, target=TOFINO1, n_flows=100_000, k_range=(1, 2, 4, 6), depth_range=(4, 8, 12)
        )
        at_1m = search_netbeacon(
            windowed3, target=TOFINO1, n_flows=1_000_000, k_range=(1, 2, 4, 6), depth_range=(4, 8, 12)
        )
        assert at_100k is not None
        if at_1m is not None:
            assert at_1m.model.config.top_k <= at_100k.model.config.top_k
            assert at_1m.report.f1_score <= at_100k.report.f1_score + 0.05


class TestLeo:
    def test_entry_counts_are_powers_of_two(self):
        for depth in (3, 6, 10, 11):
            entries = leo_tcam_entries(depth, 4)
            assert entries & (entries - 1) == 0

    def test_entries_grow_with_depth(self):
        assert leo_tcam_entries(11, 4) >= leo_tcam_entries(6, 4)

    def test_entries_capped(self):
        assert leo_tcam_entries(30, 8) == 2**14

    def test_tcam_bits_scale_with_k(self):
        assert leo_tcam_bits(6, 6) > leo_tcam_bits(6, 2)

    def test_search_returns_candidate(self, windowed3):
        candidate = search_leo(
            windowed3, target=TOFINO1, n_flows=100_000, k_range=(2, 4), depth_range=(6, 11)
        )
        assert candidate is not None
        assert candidate.tcam_entries in {2**n for n in range(11, 15)}


class TestPerPacket:
    def test_search_returns_candidate(self, windowed3):
        candidate = search_per_packet(windowed3, target=TOFINO1, depth_range=(6, 8))
        assert candidate is not None
        assert candidate.register_bits == 0

    def test_stateless_model_weaker_than_stateful(self, windowed3):
        stateless = search_per_packet(windowed3, target=TOFINO1, depth_range=(8,))
        stateful = search_netbeacon(
            windowed3, target=TOFINO1, n_flows=100_000, k_range=(6,), depth_range=(10,)
        )
        assert stateless is not None and stateful is not None
        assert stateless.report.f1_score <= stateful.report.f1_score + 0.05
