"""Unit tests for the pForest (in-network random forest) baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import evaluate_pforest, pforest_tcam_cost, train_pforest_model
from repro.baselines.topk import train_topk_model
from repro.core.config import TopKConfig
from repro.core.evaluation import evaluate_classifier
from repro.switch.targets import TOFINO1


@pytest.fixture(scope="module")
def pforest_model(windowed3):
    return train_pforest_model(windowed3, TopKConfig(depth=6, top_k=4), n_trees=5, random_state=1)


class TestPForestTraining:
    def test_ensemble_size(self, pforest_model):
        assert pforest_model.n_trees == 5
        assert len(pforest_model.trees) == 5

    def test_shared_topk_feature_set(self, pforest_model):
        assert len(pforest_model.feature_indices) == 4
        assert pforest_model.features_used() <= set(pforest_model.feature_indices)

    def test_member_depth_respected(self, pforest_model):
        assert all(tree.get_depth() <= 6 for tree in pforest_model.trees)

    def test_predictions_are_valid_labels(self, pforest_model, windowed3):
        predictions = pforest_model.predict(windowed3.flow_matrix("test"))
        assert set(np.unique(predictions)) <= set(range(windowed3.n_classes))

    def test_accuracy_beats_chance(self, pforest_model, windowed3):
        report = evaluate_pforest(pforest_model, windowed3)
        assert report.f1_score > 1.0 / windowed3.n_classes

    def test_ensemble_at_least_as_good_as_single_tree(self, pforest_model, windowed3):
        single = train_topk_model(windowed3, TopKConfig(depth=6, top_k=4), random_state=1)
        single_report = evaluate_classifier(
            single, windowed3.flow_matrix("test"), windowed3.split_labels("test")
        )
        forest_report = evaluate_pforest(pforest_model, windowed3)
        assert forest_report.f1_score >= single_report.f1_score - 0.1

    def test_invalid_n_trees(self, windowed3):
        with pytest.raises(ValueError):
            train_pforest_model(windowed3, TopKConfig(depth=4, top_k=2), n_trees=0)


class TestPForestResources:
    def test_register_layout_same_as_topk(self, pforest_model):
        layout = pforest_model.register_layout()
        assert layout.feature_bits <= 4 * 32

    def test_tcam_cost_scales_with_ensemble(self, windowed3):
        small = train_pforest_model(windowed3, TopKConfig(depth=5, top_k=3), n_trees=2, random_state=0)
        large = train_pforest_model(windowed3, TopKConfig(depth=5, top_k=3), n_trees=6, random_state=0)
        small_entries, _ = pforest_tcam_cost(small, windowed3, target=TOFINO1)
        large_entries, _ = pforest_tcam_cost(large, windowed3, target=TOFINO1)
        assert large_entries > small_entries

    def test_rules_have_one_group_per_tree(self, pforest_model, windowed3):
        rules = pforest_model.generate_rules(windowed3.flow_matrix("train"))
        assert len(rules.subtree_rules) == pforest_model.n_trees
