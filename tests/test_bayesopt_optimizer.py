"""Unit tests for surrogates, acquisitions and the Bayesian optimisers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bayesopt.acquisition import (
    expected_improvement,
    probability_of_improvement,
    random_scalarization_weights,
    scalarize,
    upper_confidence_bound,
)
from repro.bayesopt.optimizer import BayesianOptimizer, MultiObjectiveBayesianOptimizer
from repro.bayesopt.space import IntegerParameter, ParameterSpace, RealParameter
from repro.bayesopt.surrogate import GaussianProcessSurrogate, RandomForestSurrogate


class TestSurrogates:
    def _data(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(0, 1, size=(40, 2))
        y = np.sin(X[:, 0] * 6) + X[:, 1]
        return X, y

    def test_gp_fit_predict_shapes(self):
        X, y = self._data()
        gp = GaussianProcessSurrogate().fit(X, y)
        mean, std = gp.predict(X[:5])
        assert mean.shape == (5,)
        assert std.shape == (5,)
        assert np.all(std >= 0)

    def test_gp_interpolates_training_points(self):
        X, y = self._data()
        gp = GaussianProcessSurrogate(noise=1e-8).fit(X, y)
        mean, _ = gp.predict(X)
        assert np.abs(mean - y).max() < 0.1

    def test_gp_uncertainty_lower_at_training_points(self):
        X, y = self._data()
        gp = GaussianProcessSurrogate().fit(X, y)
        _, std_train = gp.predict(X[:1])
        _, std_far = gp.predict(np.array([[5.0, 5.0]]))
        assert std_far[0] > std_train[0]

    def test_gp_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            GaussianProcessSurrogate().predict(np.zeros((1, 2)))

    def test_gp_input_validation(self):
        with pytest.raises(ValueError):
            GaussianProcessSurrogate().fit(np.zeros((3, 2)), np.zeros(4))

    def test_forest_surrogate_shapes(self):
        X, y = self._data()
        forest = RandomForestSurrogate(n_estimators=10).fit(X, y)
        mean, std = forest.predict(X[:7])
        assert mean.shape == (7,)
        assert np.all(std > 0)

    def test_forest_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            RandomForestSurrogate().predict(np.zeros((1, 2)))


class TestAcquisitions:
    def test_expected_improvement_positive_for_promising(self):
        ei = expected_improvement(np.array([1.0]), np.array([0.1]), best=0.5)
        assert ei[0] > 0

    def test_expected_improvement_near_zero_for_poor(self):
        ei = expected_improvement(np.array([-5.0]), np.array([0.01]), best=0.5)
        assert ei[0] == pytest.approx(0.0, abs=1e-6)

    def test_ei_increases_with_mean(self):
        means = np.array([0.1, 0.5, 0.9])
        ei = expected_improvement(means, np.full(3, 0.1), best=0.0)
        assert ei[0] < ei[1] < ei[2]

    def test_ei_increases_with_uncertainty_below_best(self):
        ei = expected_improvement(np.array([0.0, 0.0]), np.array([0.01, 1.0]), best=0.5)
        assert ei[1] > ei[0]

    def test_ucb(self):
        ucb = upper_confidence_bound(np.array([1.0]), np.array([0.5]), beta=2.0)
        assert ucb[0] == pytest.approx(2.0)

    def test_probability_of_improvement_bounds(self):
        pi = probability_of_improvement(np.array([0.0, 10.0]), np.array([1.0, 1.0]), best=0.5)
        assert 0 <= pi[0] <= 1
        assert pi[1] > 0.99

    def test_scalarization_weights_sum_to_one(self):
        weights = random_scalarization_weights(3, np.random.default_rng(0))
        assert weights.shape == (3,)
        assert weights.sum() == pytest.approx(1.0)

    def test_scalarize_prefers_dominating_point(self):
        objectives = np.array([[0.9, 0.9], [0.1, 0.1]])
        weights = np.array([0.5, 0.5])
        scores = scalarize(objectives, weights)
        assert scores[0] > scores[1]


class TestBayesianOptimizer:
    def test_optimises_simple_quadratic(self):
        space = ParameterSpace([RealParameter("x", -5.0, 5.0)])
        optimizer = BayesianOptimizer(space, n_initial=5, candidate_pool=64, seed=0)
        for _ in range(25):
            config = optimizer.ask(1)[0]
            value = -(config["x"] - 2.0) ** 2
            optimizer.tell(config, value)
        best = optimizer.best()
        assert best is not None
        assert abs(best.config["x"] - 2.0) < 1.5

    def test_ask_returns_batch(self):
        space = ParameterSpace([IntegerParameter("a", 0, 10)])
        optimizer = BayesianOptimizer(space, seed=1)
        assert len(optimizer.ask(4)) == 4

    def test_best_requires_feasible(self):
        space = ParameterSpace([IntegerParameter("a", 0, 10)])
        optimizer = BayesianOptimizer(space, seed=1)
        optimizer.tell({"a": 3}, 1.0, feasible=False)
        assert optimizer.best() is None
        optimizer.tell({"a": 4}, 0.5, feasible=True)
        assert optimizer.best().config["a"] == 4


class TestMultiObjectiveOptimizer:
    def test_objective_count_enforced(self):
        space = ParameterSpace([IntegerParameter("a", 0, 10)])
        optimizer = MultiObjectiveBayesianOptimizer(space, n_objectives=2, seed=0)
        with pytest.raises(ValueError):
            optimizer.tell({"a": 1}, [0.5])

    def test_pareto_front_excludes_dominated(self):
        space = ParameterSpace([IntegerParameter("a", 0, 10)])
        optimizer = MultiObjectiveBayesianOptimizer(space, n_objectives=2, seed=0)
        optimizer.tell({"a": 1}, [0.9, 0.9])
        optimizer.tell({"a": 2}, [0.1, 0.1])
        optimizer.tell({"a": 3}, [0.95, 0.2])
        front_configs = {obs.config["a"] for obs in optimizer.pareto_front()}
        assert 1 in front_configs
        assert 2 not in front_configs

    def test_infeasible_points_excluded_from_front(self):
        space = ParameterSpace([IntegerParameter("a", 0, 10)])
        optimizer = MultiObjectiveBayesianOptimizer(space, n_objectives=2, seed=0)
        optimizer.tell({"a": 1}, [0.9, 0.9], feasible=False)
        assert optimizer.pareto_front() == []

    def test_converges_towards_better_tradeoffs(self):
        # Maximise (x, 1-x) scalarised: any x is Pareto-optimal, but the
        # optimiser must at least keep proposing valid points after warm-up.
        space = ParameterSpace([RealParameter("x", 0.0, 1.0)])
        optimizer = MultiObjectiveBayesianOptimizer(space, n_objectives=2, n_initial=4, seed=2)
        for _ in range(12):
            config = optimizer.ask(1)[0]
            optimizer.tell(config, [config["x"], 1 - config["x"]])
        assert len(optimizer.pareto_front()) >= 2
