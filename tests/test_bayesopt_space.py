"""Unit tests for the BO parameter space."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bayesopt.space import (
    CategoricalParameter,
    IntegerParameter,
    OrdinalParameter,
    ParameterSpace,
    RealParameter,
)


class TestParameters:
    def test_integer_sample_in_range(self):
        parameter = IntegerParameter("d", 1, 10)
        rng = np.random.default_rng(0)
        for _ in range(50):
            assert 1 <= parameter.sample(rng) <= 10

    def test_integer_encode_decode_round_trip(self):
        parameter = IntegerParameter("d", 2, 30)
        for value in (2, 7, 15, 30):
            assert parameter.decode(parameter.encode(value)) == value

    def test_integer_degenerate_range(self):
        parameter = IntegerParameter("d", 5, 5)
        assert parameter.encode(5) == 0.0
        assert parameter.decode(0.7) == 5

    def test_integer_invalid_range(self):
        with pytest.raises(ValueError):
            IntegerParameter("d", 5, 1)

    def test_real_round_trip(self):
        parameter = RealParameter("x", 0.0, 10.0)
        assert parameter.decode(parameter.encode(2.5)) == pytest.approx(2.5)

    def test_real_decode_clipped(self):
        parameter = RealParameter("x", 0.0, 1.0)
        assert parameter.decode(2.0) == 1.0
        assert parameter.decode(-1.0) == 0.0

    def test_ordinal_round_trip(self):
        parameter = OrdinalParameter("bits", (8, 16, 32))
        for value in (8, 16, 32):
            assert parameter.decode(parameter.encode(value)) == value

    def test_ordinal_empty_rejected(self):
        with pytest.raises(ValueError):
            OrdinalParameter("bits", ())

    def test_categorical_round_trip(self):
        parameter = CategoricalParameter("target", ("tofino1", "tofino2"))
        assert parameter.decode(parameter.encode("tofino2")) == "tofino2"


class TestParameterSpace:
    def _space(self) -> ParameterSpace:
        return ParameterSpace(
            [IntegerParameter("depth", 1, 20), IntegerParameter("k", 1, 6),
             OrdinalParameter("bits", (8, 16, 32))]
        )

    def test_sample_has_all_names(self):
        config = self._space().sample(np.random.default_rng(0))
        assert set(config) == {"depth", "k", "bits"}

    def test_sample_many(self):
        configs = self._space().sample_many(5, np.random.default_rng(0))
        assert len(configs) == 5

    def test_encode_shape_and_range(self):
        space = self._space()
        vector = space.encode({"depth": 10, "k": 3, "bits": 16})
        assert vector.shape == (3,)
        assert np.all((0 <= vector) & (vector <= 1))

    def test_encode_decode_round_trip(self):
        space = self._space()
        config = {"depth": 10, "k": 3, "bits": 16}
        assert space.decode(space.encode(config)) == config

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            ParameterSpace([IntegerParameter("a", 0, 1), IntegerParameter("a", 0, 1)])

    def test_empty_space_rejected(self):
        with pytest.raises(ValueError):
            ParameterSpace([])

    def test_decode_wrong_dimensionality(self):
        with pytest.raises(ValueError):
            self._space().decode(np.array([0.5]))
