"""Unit tests for model configurations and partition enumeration."""

from __future__ import annotations

import pytest

from repro.core.config import SpliDTConfig, TopKConfig, enumerate_partitionings


class TestSpliDTConfig:
    def test_valid_configuration(self):
        config = SpliDTConfig(depth=6, features_per_subtree=4, partition_sizes=(2, 2, 2))
        assert config.n_partitions == 3

    def test_partition_sizes_must_sum_to_depth(self):
        with pytest.raises(ValueError):
            SpliDTConfig(depth=6, features_per_subtree=4, partition_sizes=(2, 2))

    def test_positive_partition_sizes(self):
        with pytest.raises(ValueError):
            SpliDTConfig(depth=3, features_per_subtree=2, partition_sizes=(3, 0))

    def test_positive_depth_and_k(self):
        with pytest.raises(ValueError):
            SpliDTConfig(depth=0, features_per_subtree=2, partition_sizes=())
        with pytest.raises(ValueError):
            SpliDTConfig(depth=2, features_per_subtree=0, partition_sizes=(2,))

    def test_bit_width_validation(self):
        with pytest.raises(ValueError):
            SpliDTConfig(depth=2, features_per_subtree=1, partition_sizes=(2,), bit_width=12)
        for width in (8, 16, 32):
            SpliDTConfig(depth=2, features_per_subtree=1, partition_sizes=(2,), bit_width=width)

    def test_uniform_builder_even(self):
        config = SpliDTConfig.uniform(depth=9, n_partitions=3, features_per_subtree=4)
        assert config.partition_sizes == (3, 3, 3)

    def test_uniform_builder_remainder(self):
        config = SpliDTConfig.uniform(depth=10, n_partitions=3, features_per_subtree=4)
        assert sum(config.partition_sizes) == 10
        assert max(config.partition_sizes) - min(config.partition_sizes) <= 1

    def test_uniform_builder_single_partition(self):
        config = SpliDTConfig.uniform(depth=7, n_partitions=1, features_per_subtree=2)
        assert config.partition_sizes == (7,)

    def test_uniform_builder_invalid(self):
        with pytest.raises(ValueError):
            SpliDTConfig.uniform(depth=2, n_partitions=3, features_per_subtree=1)

    def test_frozen(self):
        config = SpliDTConfig(depth=2, features_per_subtree=1, partition_sizes=(2,))
        with pytest.raises(Exception):
            config.depth = 5


class TestTopKConfig:
    def test_valid(self):
        config = TopKConfig(depth=10, top_k=4)
        assert config.use_stateful

    def test_invalid_depth(self):
        with pytest.raises(ValueError):
            TopKConfig(depth=0, top_k=2)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            TopKConfig(depth=5, top_k=0)

    def test_invalid_bit_width(self):
        with pytest.raises(ValueError):
            TopKConfig(depth=5, top_k=2, bit_width=9)


class TestEnumeratePartitionings:
    def test_single_partition(self):
        assert enumerate_partitionings(5, 1) == [(5,)]

    def test_two_partitions(self):
        assert set(enumerate_partitionings(4, 2)) == {(1, 3), (2, 2), (3, 1)}

    def test_all_sum_to_depth(self):
        for composition in enumerate_partitionings(7, 3):
            assert sum(composition) == 7
            assert all(part >= 1 for part in composition)

    def test_count_is_binomial(self):
        # Compositions of n into k parts: C(n-1, k-1).
        assert len(enumerate_partitionings(6, 3)) == 10

    def test_infeasible_cases_empty(self):
        assert enumerate_partitionings(2, 3) == []
        assert enumerate_partitionings(3, 0) == []
