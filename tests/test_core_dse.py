"""Unit tests for the design-space exploration framework."""

from __future__ import annotations

import pytest

from repro.core.config import SpliDTConfig
from repro.core.dse import DesignSearch, SearchResult, evaluate_configuration
from repro.datasets.materialize import DatasetStore
from repro.switch.targets import TOFINO1


@pytest.fixture(scope="module")
def store(small_dataset):
    return DatasetStore(small_dataset, random_state=1)


@pytest.fixture(scope="module")
def search_result(store):
    search = DesignSearch(
        store,
        target=TOFINO1,
        depth_range=(2, 10),
        k_range=(1, 4),
        partitions_range=(1, 3),
        seed=2,
    )
    return search.run(n_iterations=8, method="bayesian")


class TestEvaluateConfiguration:
    def test_single_evaluation(self, store):
        config = SpliDTConfig(depth=4, features_per_subtree=3, partition_sizes=(2, 2))
        candidate = evaluate_configuration(store, config, target=TOFINO1)
        assert 0.0 <= candidate.f1_score <= 1.0
        assert candidate.max_flows > 0
        assert candidate.rules.n_entries > 0
        assert candidate.timings.training > 0

    def test_timings_populated(self, store):
        config = SpliDTConfig(depth=3, features_per_subtree=2, partition_sizes=(3,))
        candidate = evaluate_configuration(store, config, target=TOFINO1)
        assert candidate.timings.total > 0
        assert candidate.timings.fetch >= 0

    def test_supports_reflects_capacity(self, store):
        config = SpliDTConfig(depth=4, features_per_subtree=2, partition_sizes=(2, 2))
        candidate = evaluate_configuration(store, config, target=TOFINO1)
        assert candidate.supports(1)
        assert not candidate.supports(10**9)


class TestDesignSearch:
    def test_history_length(self, search_result):
        assert len(search_result.history) == 8

    def test_config_from_params_clamps_partitions(self, store):
        search = DesignSearch(store, depth_range=(2, 6), k_range=(1, 3), partitions_range=(1, 7))
        config = search.config_from_params({"depth": 3, "features_per_subtree": 2, "n_partitions": 6})
        assert config.n_partitions <= config.depth
        assert sum(config.partition_sizes) == config.depth

    def test_evaluation_cache_reuses_results(self, store):
        search = DesignSearch(store, depth_range=(2, 6), k_range=(1, 3), partitions_range=(1, 3))
        config = SpliDTConfig(depth=4, features_per_subtree=2, partition_sizes=(2, 2))
        first = search.evaluate(config)
        second = search.evaluate(config)
        assert first is second

    def test_pareto_candidates_non_dominated(self, search_result):
        front = search_result.pareto_candidates()
        assert front
        for a in front:
            for b in front:
                if a is b:
                    continue
                assert not (
                    a.f1_score >= b.f1_score
                    and a.max_flows >= b.max_flows
                    and (a.f1_score > b.f1_score or a.max_flows > b.max_flows)
                )

    def test_best_at_flows_returns_feasible(self, search_result):
        best = search_result.best_at_flows(100_000)
        if best is not None:
            assert best.supports(100_000)

    def test_best_at_flows_monotone(self, search_result):
        at_100k = search_result.best_at_flows(100_000)
        at_1m = search_result.best_at_flows(1_000_000)
        if at_100k is not None and at_1m is not None:
            assert at_100k.f1_score >= at_1m.f1_score - 1e-9

    def test_convergence_trace_monotone(self, search_result):
        trace = search_result.convergence_trace()
        assert len(trace) == len(search_result.history)
        assert all(b >= a for a, b in zip(trace, trace[1:]))

    def test_mean_timings(self, search_result):
        timings = search_result.mean_timings()
        assert timings.training > 0
        assert timings.total >= timings.training

    def test_random_search_mode(self, store):
        search = DesignSearch(
            store, depth_range=(2, 6), k_range=(1, 3), partitions_range=(1, 3), seed=5
        )
        result = search.run(n_iterations=3, method="random")
        assert len(result.history) == 3

    def test_pareto_table_keys(self, search_result):
        table = search_result.pareto_table((100_000, 500_000))
        assert set(table) == {100_000, 500_000}

    def test_empty_search_result(self):
        result = SearchResult(history=[], target=TOFINO1)
        assert result.pareto_candidates() == []
        assert result.best_at_flows(100) is None
        assert result.convergence_trace() == []
