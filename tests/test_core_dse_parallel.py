"""Parallel DSE: serial parity, pool-safe caching, crash cleanup, affinity.

The contract under test (see ``docs/performance.md``): for the same seed a
search run with ``workers=N`` must produce a ``SearchResult`` whose history,
convergence trace and Pareto front are **bit-identical** to the serial path
(``workers=0``) — the pool only changes the wall-clock.  A worker that dies
mid-candidate must fail the search cleanly: no leaked ``/dev/shm`` segments,
no zombie processes, and a :class:`~repro.core.dse_parallel.DseError` that
names the dead worker.
"""

from __future__ import annotations

import os
import signal
import threading
import time
import warnings

import pytest

from repro.affinity import affinity_supported, pin_worker, resolve_affinity
from repro.core.config import SpliDTConfig
from repro.core.dse import DesignSearch, config_cache_key, resolve_dse_workers
from repro.core.dse_parallel import DseError, ParallelEvaluator
from repro.datasets import DatasetStore, load_dataset
from repro.switch.targets import TOFINO1

SEARCH_KWARGS = dict(
    target=TOFINO1,
    depth_range=(2, 8),
    k_range=(1, 4),
    partitions_range=(1, 3),
    seed=7,
)


@pytest.fixture(scope="module")
def parity_store():
    dataset = load_dataset("D3", n_flows=160, seed=5)
    return DatasetStore(dataset, random_state=5)


def _run_search(store, workers: int):
    with DesignSearch(store, workers=workers, **SEARCH_KWARGS) as search:
        return search.run(n_iterations=6, batch_size=3, method="bayesian")


def _history_signature(result):
    """Everything parity promises, down to the trained split thresholds."""
    return [
        (
            c.config.depth,
            c.config.features_per_subtree,
            c.config.partition_sizes,
            c.config.bit_width,
            c.report.f1_score,
            c.report.accuracy,
            c.report.precision,
            c.report.recall,
            c.resources.max_flows,
            c.rules.n_entries,
            sorted(c.model.subtrees),
            sorted(c.model.features_used()),
            [
                node.threshold
                for sid in sorted(c.model.subtrees)
                for node in c.model.subtrees[sid].tree.tree_.nodes
            ],
        )
        for c in result.history
    ]


def _dse_shm_residue() -> list[str]:
    try:
        return [n for n in os.listdir("/dev/shm") if n.startswith("splidt-dse")]
    except FileNotFoundError:  # non-Linux: nothing to leak
        return []


@pytest.fixture(scope="module")
def serial_result(parity_store):
    return _run_search(parity_store, workers=0)


class TestSerialParallelParity:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_history_trace_and_pareto_identical(self, parity_store, serial_result, workers):
        result = _run_search(parity_store, workers=workers)
        assert _history_signature(result) == _history_signature(serial_result)
        assert result.convergence_trace() == serial_result.convergence_trace()
        assert [
            config_cache_key(c.config) for c in result.pareto_candidates()
        ] == [config_cache_key(c.config) for c in serial_result.pareto_candidates()]
        assert _dse_shm_residue() == []

    def test_wall_and_cpu_accounting(self, serial_result):
        assert serial_result.workers == 0
        assert serial_result.wall_time > 0
        assert serial_result.aggregate_cpu() > 0

    def test_random_method_parity(self, parity_store):
        serial = DesignSearch(parity_store, workers=0, **SEARCH_KWARGS)
        with DesignSearch(parity_store, workers=2, **SEARCH_KWARGS) as parallel:
            a = serial.run(n_iterations=4, batch_size=2, method="random")
            b = parallel.run(n_iterations=4, batch_size=2, method="random")
        assert _history_signature(a) == _history_signature(b)


class TestPoolSafeCache:
    def test_worker_results_populate_parent_cache(self, parity_store):
        with DesignSearch(parity_store, workers=2, **SEARCH_KWARGS) as search:
            result = search.run(n_iterations=4, batch_size=2)
            for candidate in result.history:
                key = config_cache_key(candidate.config)
                assert search._evaluated[key] is candidate
                # A later serial evaluate() must hit the pool-filled cache.
                assert search.evaluate(candidate.config) is candidate

    def test_duplicates_in_one_batch_evaluate_once(self, parity_store):
        config_a = SpliDTConfig(depth=4, features_per_subtree=2, partition_sizes=(2, 2))
        config_b = SpliDTConfig(depth=3, features_per_subtree=2, partition_sizes=(3,))
        with ParallelEvaluator(parity_store, workers=2, random_state=5) as pool:
            cache: dict = {}
            results = pool.evaluate_batch([config_a, config_a, config_b], cache)
            assert pool._task_counter == 2  # one dispatch per distinct config
            assert results[0] is results[1]
            assert len(cache) == 2

    def test_cached_keys_are_not_redispatched(self, parity_store):
        config = SpliDTConfig(depth=4, features_per_subtree=2, partition_sizes=(2, 2))
        with ParallelEvaluator(parity_store, workers=1, random_state=5) as pool:
            cache: dict = {}
            first = pool.evaluate_batch([config], cache)
            dispatched = pool._task_counter
            second = pool.evaluate_batch([config], cache)
            assert pool._task_counter == dispatched
            assert second[0] is first[0]


class TestCrashCleanup:
    def test_sigkill_mid_candidate_fails_clean(self, parity_store):
        # Enough heavy candidates that the lone worker is guaranteed to be
        # mid-evaluation when the signal lands.
        configs = [
            SpliDTConfig(depth=d, features_per_subtree=4, partition_sizes=sizes)
            for d, sizes in [
                (12, (4, 4, 4)),
                (13, (5, 4, 4)),
                (14, (5, 5, 4)),
                (15, (5, 5, 5)),
            ]
        ]
        with ParallelEvaluator(parity_store, workers=1, random_state=5) as pool:
            failures: list[Exception] = []

            def run() -> None:
                try:
                    pool.evaluate_batch(configs, {})
                except DseError as exc:
                    failures.append(exc)

            thread = threading.Thread(target=run)
            thread.start()
            # Kill the worker once it has dequeued a task — i.e. while it is
            # actually mid-candidate, not before dispatch or after the batch.
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                if (
                    pool._task_counter >= len(configs)
                    and pool._task_queues[0].qsize() < len(configs)
                ):
                    break
                time.sleep(0.002)
            os.kill(pool._processes[0].pid, signal.SIGKILL)
            thread.join(timeout=60)
            assert not thread.is_alive()
            assert failures, "evaluate_batch returned instead of failing"
            assert "exited" in str(failures[0])
            # Clean teardown: workers reaped (no zombies), nothing in /dev/shm.
            assert all(not p.is_alive() for p in pool._processes)
            assert all(p.exitcode is not None for p in pool._processes)
            assert _dse_shm_residue() == []
            # The pool is unusable but safely so.
            with pytest.raises(DseError):
                pool.evaluate_batch(configs[:1], {})

    def test_worker_exception_fails_search(self, parity_store):
        pool = ParallelEvaluator(parity_store, workers=1, random_state=5)
        # The criterion is only validated during training, i.e. inside the
        # worker: it raises there and ships its traceback back.
        bad = SpliDTConfig(
            depth=4, features_per_subtree=2, partition_sizes=(2, 2), criterion="bogus"
        )
        with pytest.raises(DseError, match="failed"):
            pool.evaluate_batch([bad], {})
        assert _dse_shm_residue() == []

    def test_close_is_idempotent(self, parity_store):
        pool = ParallelEvaluator(parity_store, workers=1, random_state=5)
        pool.close()
        pool.close()
        assert _dse_shm_residue() == []


class TestWorkerKnobs:
    def test_workers_env_resolution(self, monkeypatch):
        monkeypatch.delenv("SPLIDT_DSE_WORKERS", raising=False)
        assert resolve_dse_workers(None) == 0
        monkeypatch.setenv("SPLIDT_DSE_WORKERS", "3")
        assert resolve_dse_workers(None) == 3
        assert resolve_dse_workers(2) == 2  # constructor argument wins
        assert resolve_dse_workers(0) == 0

    def test_negative_workers_rejected(self, parity_store):
        with pytest.raises(ValueError, match="workers"):
            DesignSearch(parity_store, workers=-1, **SEARCH_KWARGS)

    def test_affinity_env_resolution(self, monkeypatch):
        monkeypatch.delenv("SPLIDT_AFFINITY", raising=False)
        assert resolve_affinity(None) is False
        monkeypatch.setenv("SPLIDT_AFFINITY", "1")
        assert resolve_affinity(None) is True
        assert resolve_affinity(False) is False  # constructor argument wins


class TestAffinity:
    @pytest.mark.skipif(not affinity_supported(), reason="no sched_setaffinity")
    def test_pin_worker_pins_round_robin(self):
        before = os.sched_getaffinity(0)
        try:
            cpus = sorted(before)
            cpu = pin_worker(len(cpus) + 1)  # wraps round-robin
            assert cpu == cpus[(len(cpus) + 1) % len(cpus)]
            assert os.sched_getaffinity(0) == {cpu}
        finally:
            os.sched_setaffinity(0, before)

    def test_pin_worker_degrades_with_warning(self, monkeypatch):
        monkeypatch.delattr(os, "sched_setaffinity", raising=False)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert pin_worker(0) is None
        assert any("unpinned" in str(w.message) for w in caught)

    def test_parallel_search_with_affinity(self, parity_store, serial_result):
        if not affinity_supported():
            pytest.skip("no sched_setaffinity on this platform")
        with DesignSearch(
            parity_store, workers=2, affinity=True, **SEARCH_KWARGS
        ) as search:
            result = search.run(n_iterations=6, batch_size=3)
        assert _history_signature(result) == _history_signature(serial_result)
