"""Unit tests for the evaluation helpers."""

from __future__ import annotations

import numpy as np

from repro.core.evaluation import (
    ClassificationReport,
    evaluate_classifier,
    evaluate_partitioned_tree,
)
from repro.ml import DecisionTreeClassifier


class TestClassificationReport:
    def test_from_perfect_predictions(self):
        report = ClassificationReport.from_predictions(np.array([0, 1, 2]), np.array([0, 1, 2]))
        assert report.f1_score == 1.0
        assert report.accuracy == 1.0
        assert report.n_samples == 3
        assert report.confusion.shape == (3, 3)

    def test_from_poor_predictions(self):
        report = ClassificationReport.from_predictions(np.array([0, 0, 1]), np.array([1, 1, 0]))
        assert report.f1_score == 0.0
        assert report.accuracy == 0.0

    def test_metrics_bounded(self):
        rng = np.random.default_rng(0)
        y_true = rng.integers(0, 3, 40)
        y_pred = rng.integers(0, 3, 40)
        report = ClassificationReport.from_predictions(y_true, y_pred)
        for value in (report.f1_score, report.accuracy, report.precision, report.recall):
            assert 0.0 <= value <= 1.0


class TestEvaluatePartitionedTree:
    def test_test_split_report(self, splidt_model, windowed3):
        report = evaluate_partitioned_tree(splidt_model, windowed3, split="test")
        assert report.n_samples == windowed3.test_indices.shape[0]
        assert 0.0 <= report.f1_score <= 1.0

    def test_train_split_scores_higher_or_equal(self, splidt_model, windowed3):
        train = evaluate_partitioned_tree(splidt_model, windowed3, split="train")
        test = evaluate_partitioned_tree(splidt_model, windowed3, split="test")
        assert train.f1_score >= test.f1_score - 0.15

    def test_beats_random_guessing(self, splidt_model, windowed3):
        report = evaluate_partitioned_tree(splidt_model, windowed3, split="test")
        assert report.f1_score > 1.0 / windowed3.n_classes


class TestEvaluateClassifier:
    def test_flat_classifier(self, windowed3):
        tree = DecisionTreeClassifier(max_depth=8, min_samples_leaf=3)
        tree.fit(windowed3.flow_matrix("train"), windowed3.split_labels("train"))
        report = evaluate_classifier(
            tree, windowed3.flow_matrix("test"), windowed3.split_labels("test")
        )
        assert 0.0 <= report.f1_score <= 1.0
        assert report.n_samples == windowed3.test_indices.shape[0]
