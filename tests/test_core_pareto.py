"""Unit tests for Pareto-frontier utilities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pareto import (
    best_at_budget,
    dominates,
    hypervolume_2d,
    pareto_front,
    pareto_front_indices,
)


class TestDominates:
    def test_strict_domination(self):
        assert dominates([2, 2], [1, 1])

    def test_partial_improvement_dominates(self):
        assert dominates([2, 1], [1, 1])

    def test_equal_points_do_not_dominate(self):
        assert not dominates([1, 1], [1, 1])

    def test_tradeoff_points_do_not_dominate(self):
        assert not dominates([2, 0], [0, 2])
        assert not dominates([0, 2], [2, 0])


class TestParetoFront:
    def test_single_point(self):
        indices = pareto_front_indices(np.array([[1.0, 1.0]]))
        np.testing.assert_array_equal(indices, [0])

    def test_dominated_points_removed(self):
        points = np.array([[1.0, 1.0], [2.0, 2.0], [0.5, 0.5]])
        indices = pareto_front_indices(points)
        np.testing.assert_array_equal(indices, [1])

    def test_tradeoff_points_kept(self):
        points = np.array([[1.0, 3.0], [2.0, 2.0], [3.0, 1.0]])
        assert len(pareto_front_indices(points)) == 3

    def test_front_sorted_by_first_objective(self):
        points = np.array([[3.0, 1.0], [1.0, 3.0], [2.0, 2.0]])
        front = pareto_front(points)
        assert list(front[:, 0]) == sorted(front[:, 0])

    def test_front_members_not_dominated(self):
        rng = np.random.default_rng(0)
        points = rng.uniform(0, 1, size=(100, 2))
        front = pareto_front(points)
        for member in front:
            assert not any(dominates(other, member) for other in points)

    def test_invalid_shape(self):
        with pytest.raises(ValueError):
            pareto_front_indices(np.array([1.0, 2.0]))


class TestHypervolume:
    def test_single_point_rectangle(self):
        assert hypervolume_2d(np.array([[2.0, 3.0]])) == pytest.approx(6.0)

    def test_dominated_point_adds_nothing(self):
        base = hypervolume_2d(np.array([[2.0, 3.0]]))
        extended = hypervolume_2d(np.array([[2.0, 3.0], [1.0, 1.0]]))
        assert extended == pytest.approx(base)

    def test_two_tradeoff_points(self):
        volume = hypervolume_2d(np.array([[1.0, 3.0], [3.0, 1.0]]))
        assert volume == pytest.approx(3 + 1 * 2)

    def test_empty(self):
        assert hypervolume_2d(np.zeros((0, 2))) == 0.0

    def test_better_front_has_larger_volume(self):
        worse = np.array([[0.5, 0.5], [0.6, 0.4]])
        better = np.array([[0.9, 0.8], [0.95, 0.6]])
        assert hypervolume_2d(better) > hypervolume_2d(worse)


class TestBestAtBudget:
    def test_best_value_selected(self):
        costs = np.array([10, 100, 1000])
        values = np.array([0.3, 0.6, 0.9])
        best = best_at_budget(costs, np.array([5, 50, 500, 5000]), values)
        np.testing.assert_allclose(best, [0.0, 0.3, 0.6, 0.9])

    def test_monotone_in_budget(self):
        rng = np.random.default_rng(1)
        costs = rng.uniform(1, 1000, 50)
        values = rng.uniform(0, 1, 50)
        budgets = np.linspace(1, 1000, 20)
        best = best_at_budget(costs, budgets, values)
        assert all(b >= a for a, b in zip(best, best[1:]))
