"""Unit tests for partitioned decision-tree training and inference."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import SpliDTConfig
from repro.core.partitioned_tree import OUTCOME_EXIT, OUTCOME_NEXT, train_partitioned_tree
from repro.features.definitions import N_FEATURES


class TestTraining:
    def test_subtree_count_positive(self, splidt_model):
        assert splidt_model.n_subtrees >= 1

    def test_root_subtree_exists_in_partition_zero(self, splidt_model):
        root = splidt_model.subtrees[splidt_model.root_sid]
        assert root.partition == 0

    def test_sids_are_unique_and_contiguous(self, splidt_model):
        sids = sorted(splidt_model.subtrees)
        assert sids == list(range(1, len(sids) + 1))

    def test_every_subtree_respects_feature_budget(self, splidt_model, splidt_config):
        for subtree in splidt_model.subtrees.values():
            assert len(subtree.features_used()) <= splidt_config.features_per_subtree

    def test_every_subtree_respects_partition_depth(self, splidt_model, splidt_config):
        for subtree in splidt_model.subtrees.values():
            assert subtree.depth <= splidt_config.partition_sizes[subtree.partition]

    def test_total_features_exceed_per_subtree_budget(self, splidt_model, splidt_config):
        # The whole point of SpliDT: the model's total feature coverage is
        # larger than any single subtree's budget.
        assert len(splidt_model.features_used()) >= splidt_config.features_per_subtree

    def test_partitions_within_configuration(self, splidt_model, splidt_config):
        partitions = {subtree.partition for subtree in splidt_model.subtrees.values()}
        assert partitions <= set(range(splidt_config.n_partitions))

    def test_outcomes_cover_every_leaf(self, splidt_model):
        for subtree in splidt_model.subtrees.values():
            leaf_ids = {leaf.node_id for leaf in subtree.tree.tree_.leaves()}
            assert set(subtree.outcomes) == leaf_ids

    def test_next_outcomes_point_to_existing_subtrees(self, splidt_model):
        for subtree in splidt_model.subtrees.values():
            for outcome in subtree.outcomes.values():
                if outcome.kind == OUTCOME_NEXT:
                    child = splidt_model.subtrees[outcome.next_sid]
                    assert child.partition == subtree.partition + 1

    def test_exit_outcomes_have_valid_labels(self, splidt_model, windowed3):
        for subtree in splidt_model.subtrees.values():
            for outcome in subtree.outcomes.values():
                if outcome.kind == OUTCOME_EXIT:
                    assert 0 <= outcome.label < windowed3.n_classes

    def test_last_partition_subtrees_only_exit(self, splidt_model, splidt_config):
        last = splidt_config.n_partitions - 1
        for subtree in splidt_model.subtrees_in_partition(last):
            assert all(o.kind == OUTCOME_EXIT for o in subtree.outcomes.values())

    def test_single_partition_configuration(self, windowed3):
        config = SpliDTConfig(depth=4, features_per_subtree=3, partition_sizes=(4,))
        model = train_partitioned_tree(windowed3, config)
        assert model.n_subtrees == 1
        assert model.config.n_partitions == 1

    def test_too_few_windows_raises(self, windowed3):
        config = SpliDTConfig.uniform(depth=8, n_partitions=8, features_per_subtree=2)
        with pytest.raises(ValueError):
            train_partitioned_tree(windowed3, config)

    def test_deterministic_training(self, windowed3, splidt_config):
        a = train_partitioned_tree(windowed3, splidt_config, random_state=9)
        b = train_partitioned_tree(windowed3, splidt_config, random_state=9)
        assert a.n_subtrees == b.n_subtrees
        assert a.features_used() == b.features_used()


class TestInference:
    def test_predictions_are_valid_labels(self, splidt_model, windowed3):
        predictions = splidt_model.predict_windows(windowed3.window_features)
        assert predictions.shape == (windowed3.n_flows,)
        assert predictions.min() >= 0
        assert predictions.max() < windowed3.n_classes

    def test_training_accuracy_beats_chance(self, splidt_model, windowed3):
        indices = windowed3.train_indices
        predictions = splidt_model.predict_windows(windowed3.window_features[:, indices, :])
        accuracy = float(np.mean(predictions == windowed3.labels[indices]))
        assert accuracy > 1.5 / windowed3.n_classes

    def test_trace_starts_at_root(self, splidt_model, windowed3):
        windows = windowed3.window_features[:, 0, :]
        trace = splidt_model.trace_windows(windows)
        assert trace[0] == (0, splidt_model.root_sid)

    def test_trace_partitions_increase(self, splidt_model, windowed3):
        for flow in range(20):
            windows = windowed3.window_features[:, flow, :]
            trace = splidt_model.trace_windows(windows)
            partitions = [partition for partition, _ in trace]
            assert partitions == sorted(partitions)
            assert len(trace) <= splidt_model.n_partitions

    def test_wrong_shape_rejected(self, splidt_model):
        with pytest.raises(ValueError):
            splidt_model.predict_windows(np.zeros((2, 5)))

    def test_too_few_windows_rejected(self, splidt_model):
        with pytest.raises(ValueError):
            splidt_model.predict_windows(np.zeros((1, 5, N_FEATURES)))


class TestStructureStatistics:
    def test_feature_density_fields(self, splidt_model):
        density = splidt_model.feature_density()
        assert set(density) == {"partition_mean", "partition_std", "subtree_mean", "subtree_std"}
        assert 0 <= density["subtree_mean"] <= 100
        assert density["subtree_mean"] <= density["partition_mean"] + 1e-9

    def test_subtree_density_is_sparse(self, splidt_model):
        # The paper's Table 1: individual subtrees use ~10% of the catalogue.
        density = splidt_model.feature_density()
        assert density["subtree_mean"] < 35.0

    def test_max_features_per_subtree_bounded_by_k(self, splidt_model, splidt_config):
        assert splidt_model.max_features_per_subtree() <= splidt_config.features_per_subtree

    def test_features_per_partition_union(self, splidt_model):
        per_partition = splidt_model.features_per_partition()
        union = set().union(*per_partition.values()) if per_partition else set()
        assert union == splidt_model.features_used()

    def test_total_depth_bounded_by_config(self, splidt_model, splidt_config):
        assert splidt_model.total_depth <= splidt_config.depth

    def test_deeper_config_uses_more_features(self, windowed3):
        shallow = train_partitioned_tree(
            windowed3, SpliDTConfig(depth=2, features_per_subtree=2, partition_sizes=(2,))
        )
        deep = train_partitioned_tree(
            windowed3, SpliDTConfig(depth=6, features_per_subtree=4, partition_sizes=(2, 2, 2))
        )
        assert len(deep.features_used()) >= len(shallow.features_used())
