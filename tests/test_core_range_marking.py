"""Unit tests for range-marking rule generation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.range_marking import FeatureQuantizer, MarkTable, generate_rules
from repro.core.partitioned_tree import OUTCOME_EXIT


class TestFeatureQuantizer:
    def test_fit_and_quantize_bounds(self):
        matrix = np.array([[0.0, 10.0], [5.0, 100.0]])
        quantizer = FeatureQuantizer(bit_width=8).fit(matrix)
        assert quantizer.quantize_value(0, 0.0) == 0
        assert quantizer.quantize_value(0, 5.0) == 255
        assert quantizer.quantize_value(1, 200.0) == 255  # saturates

    def test_monotone(self):
        matrix = np.array([[0.0], [100.0]])
        quantizer = FeatureQuantizer(bit_width=16).fit(matrix)
        values = [quantizer.quantize_value(0, v) for v in (0, 10, 50, 99, 100)]
        assert values == sorted(values)

    def test_quantize_row(self):
        matrix = np.array([[0.0, 0.0], [10.0, 20.0]])
        quantizer = FeatureQuantizer(bit_width=8).fit(matrix)
        row = quantizer.quantize_row(np.array([5.0, 10.0]))
        assert row.shape == (2,)
        assert row[0] == pytest.approx(128, abs=1)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            FeatureQuantizer().quantize_value(0, 1.0)

    def test_invalid_bit_width(self):
        with pytest.raises(ValueError):
            FeatureQuantizer(bit_width=0)

    def test_constant_feature_handled(self):
        matrix = np.zeros((5, 1))
        quantizer = FeatureQuantizer(bit_width=8).fit(matrix)
        assert quantizer.quantize_value(0, 0.0) == 0


class TestMarkTable:
    def test_ranges_and_marks(self):
        table = MarkTable(sid=1, feature=0, thresholds=[10, 20, 30], bit_width=8)
        assert table.n_ranges == 4
        assert table.mark_for(5) == 0
        assert table.mark_for(10) == 0
        assert table.mark_for(11) == 1
        assert table.mark_for(25) == 2
        assert table.mark_for(255) == 3

    def test_duplicate_thresholds_collapse(self):
        table = MarkTable(sid=1, feature=0, thresholds=[10, 10, 20], bit_width=8)
        assert table.n_ranges == 3

    def test_range_bounds_cover_domain(self):
        table = MarkTable(sid=1, feature=0, thresholds=[50, 100], bit_width=8)
        covered = []
        for mark in range(table.n_ranges):
            low, high = table.range_bounds(mark)
            covered.extend(range(low, high + 1))
        assert covered == list(range(256))

    def test_mark_bits(self):
        assert MarkTable(sid=1, feature=0, thresholds=[], bit_width=8).mark_bits == 1
        assert MarkTable(sid=1, feature=0, thresholds=[1, 2, 3], bit_width=8).mark_bits == 2
        assert MarkTable(sid=1, feature=0, thresholds=list(range(1, 9)), bit_width=8).mark_bits == 4

    def test_ternary_entry_count_positive(self):
        table = MarkTable(sid=1, feature=0, thresholds=[17, 99], bit_width=8)
        assert table.n_ternary_entries >= table.n_ranges

    def test_invalid_mark(self):
        table = MarkTable(sid=1, feature=0, thresholds=[10], bit_width=8)
        with pytest.raises(ValueError):
            table.range_bounds(5)


class TestRuleGeneration:
    def test_every_subtree_has_rules(self, splidt_model, splidt_rules):
        assert set(splidt_rules.subtree_rules) == set(splidt_model.subtrees)

    def test_model_entries_equal_leaf_count(self, splidt_model, splidt_rules):
        for sid, subtree in splidt_model.subtrees.items():
            assert splidt_rules.subtree_rules[sid].n_model_entries == subtree.n_leaves

    def test_mark_tables_cover_used_features(self, splidt_model, splidt_rules):
        for sid, subtree in splidt_model.subtrees.items():
            assert set(splidt_rules.subtree_rules[sid].mark_tables) == subtree.features_used()

    def test_entry_counts_positive(self, splidt_rules):
        assert splidt_rules.n_entries > 0
        assert splidt_rules.n_entries == splidt_rules.n_feature_entries + splidt_rules.n_model_entries

    def test_tcam_bits_positive_and_scaled(self, splidt_rules):
        bits = splidt_rules.tcam_bits()
        assert bits > 0
        assert bits > splidt_rules.n_entries  # every entry costs more than one bit

    def test_match_key_includes_sid(self, splidt_rules):
        from repro.core.range_marking import SID_BITS
        assert splidt_rules.max_match_key_bits >= SID_BITS

    def test_classify_agrees_with_tree_on_training_data(self, splidt_model, splidt_rules, windowed3):
        """The compiled rules must reproduce the direct tree traversal."""
        indices = windowed3.train_indices[:60]
        agreements = 0
        total = 0
        for flow in indices:
            windows = windowed3.window_features[:, flow, :]
            sid = splidt_model.root_sid
            direct = splidt_model._predict_single(windows)
            for _ in range(splidt_model.n_partitions):
                subtree = splidt_model.subtrees[sid]
                outcome = splidt_rules.classify(sid, windows[subtree.partition])
                assert outcome is not None, "compiled rules must always match"
                kind, value = outcome
                if kind == OUTCOME_EXIT:
                    total += 1
                    agreements += int(value == direct)
                    break
                sid = value
            else:
                total += 1
        assert total > 0
        assert agreements / total >= 0.9

    def test_classify_unknown_sid_returns_none(self, splidt_rules, windowed3):
        assert splidt_rules.classify(9999, windowed3.window_features[0, 0, :]) is None

    def test_lower_precision_reduces_or_keeps_entries(self, splidt_model, windowed3):
        matrix = np.vstack([windowed3.partition_matrix(p, "train") for p in range(3)])
        high = generate_rules(splidt_model, matrix, bit_width=32)
        low = generate_rules(splidt_model, matrix, bit_width=8)
        assert low.n_feature_entries <= high.n_feature_entries
        assert low.n_model_entries == high.n_model_entries
