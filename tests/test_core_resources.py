"""Unit tests for resource estimation and feasibility testing."""

from __future__ import annotations

import pytest

from repro.core.resources import (
    DEPENDENCY_REGISTER_BITS,
    RESERVED_BITS,
    baseline_register_bits_vs_features,
    check_feasibility,
    estimate_splidt_resources,
    flow_capacity,
    register_bits_vs_features,
    splidt_register_layout,
    stages_for_tables,
    topk_register_layout,
)
from repro.datasets.workloads import WORKLOADS
from repro.features.definitions import FEATURES_BY_NAME
from repro.switch.targets import BLUEFIELD3, TOFINO1, TOFINO2


class TestRegisterLayouts:
    def test_splidt_feature_bits_depend_only_on_k(self, splidt_model):
        layout = splidt_register_layout(splidt_model)
        expected = splidt_model.config.features_per_subtree * splidt_model.config.bit_width
        assert layout.feature_bits == expected

    def test_splidt_total_includes_reserved(self, splidt_model):
        layout = splidt_register_layout(splidt_model)
        assert layout.total_bits == layout.feature_bits + RESERVED_BITS + layout.dependency_bits

    def test_splidt_lower_precision_smaller_layout(self, splidt_model):
        wide = splidt_register_layout(splidt_model, bit_width=32)
        narrow = splidt_register_layout(splidt_model, bit_width=8)
        assert narrow.feature_bits < wide.feature_bits

    def test_topk_layout_scales_with_feature_count(self):
        pkt = FEATURES_BY_NAME["pkt_count"].index
        syn = FEATURES_BY_NAME["syn_count"].index
        small = topk_register_layout([pkt])
        large = topk_register_layout([pkt, syn])
        assert large.feature_bits == small.feature_bits + 32

    def test_topk_dependency_bits_from_features(self):
        iat = FEATURES_BY_NAME["std_iat"].index
        layout = topk_register_layout([iat])
        assert layout.dependency_bits == 3 * DEPENDENCY_REGISTER_BITS


class TestStagesAndCapacity:
    def test_stage_count_grows_with_dependencies(self):
        base = stages_for_tables(features_per_subtree=4, dependency_stages=0, target=TOFINO1)
        chained = stages_for_tables(features_per_subtree=4, dependency_stages=3, target=TOFINO1)
        assert chained == base + 3

    def test_stage_count_within_target(self):
        stages = stages_for_tables(features_per_subtree=6, dependency_stages=3, target=TOFINO1)
        assert stages <= TOFINO1.n_stages

    def test_flow_capacity_decreases_with_per_flow_bits(self, splidt_model):
        small = splidt_register_layout(splidt_model, bit_width=8)
        large = splidt_register_layout(splidt_model, bit_width=32)
        capacity_small = flow_capacity(small, target=TOFINO1, stages_for_logic=5)
        capacity_large = flow_capacity(large, target=TOFINO1, stages_for_logic=5)
        assert capacity_small > capacity_large

    def test_flow_capacity_decreases_with_logic_stages(self, splidt_model):
        layout = splidt_register_layout(splidt_model)
        fewer = flow_capacity(layout, target=TOFINO1, stages_for_logic=4)
        more = flow_capacity(layout, target=TOFINO1, stages_for_logic=8)
        assert fewer > more

    def test_flow_capacity_larger_on_bigger_target(self, splidt_model):
        layout = splidt_register_layout(splidt_model)
        assert flow_capacity(layout, target=TOFINO2, stages_for_logic=5) > flow_capacity(
            layout, target=BLUEFIELD3, stages_for_logic=5
        )


class TestResourceEstimate:
    def test_estimate_fields(self, splidt_model, splidt_rules):
        estimate = estimate_splidt_resources(
            splidt_model, splidt_rules, target=TOFINO1, workloads=WORKLOADS
        )
        assert estimate.max_flows > 0
        assert estimate.tcam_entries == splidt_rules.n_entries
        assert estimate.n_subtrees == splidt_model.n_subtrees
        assert set(estimate.recirculation) == {"WS", "HD"}

    def test_supports_paper_scale_flow_counts(self, splidt_model, splidt_rules):
        # A k=4 model must support at least the paper's smallest target (100K).
        estimate = estimate_splidt_resources(splidt_model, splidt_rules, target=TOFINO1)
        assert estimate.max_flows >= 100_000

    def test_feasibility_accepts_supported_flow_count(self, splidt_model, splidt_rules):
        estimate = estimate_splidt_resources(splidt_model, splidt_rules, target=TOFINO1)
        verdict = check_feasibility(estimate, n_flows=min(estimate.max_flows, 100_000))
        assert verdict.feasible
        assert verdict.violations == []

    def test_feasibility_rejects_excessive_flow_count(self, splidt_model, splidt_rules):
        estimate = estimate_splidt_resources(splidt_model, splidt_rules, target=TOFINO1)
        verdict = check_feasibility(estimate, n_flows=estimate.max_flows * 10)
        assert not verdict.feasible
        assert any("register budget" in violation for violation in verdict.violations)

    def test_recirculation_tiny_fraction_of_capacity(self, splidt_model, splidt_rules):
        estimate = estimate_splidt_resources(
            splidt_model, splidt_rules, target=TOFINO1, workloads=WORKLOADS,
            concurrent_flows=1_000_000,
        )
        for recirc in estimate.recirculation.values():
            assert recirc.fraction_of_capacity < 0.01


class TestFigure11Model:
    def test_splidt_register_bits_constant_beyond_k(self):
        bits = register_bits_vs_features([1, 2, 4, 8, 16, 32], features_per_subtree=4)
        assert bits[0] == 32
        assert bits[2] == 128
        assert bits[3] == bits[4] == bits[5] == 128

    def test_baseline_register_bits_grow_linearly(self):
        bits = baseline_register_bits_vs_features([1, 2, 4, 8])
        assert bits == [32, 64, 128, 256]

    def test_splidt_never_exceeds_baseline(self):
        features = list(range(1, 20))
        splidt = register_bits_vs_features(features, features_per_subtree=4)
        baseline = baseline_register_bits_vs_features(features)
        assert all(s <= b for s, b in zip(splidt, baseline))
