"""Unit and integration tests for the data-plane programs and runtime."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import train_topk_model
from repro.core.config import TopKConfig
from repro.dataplane import SpliDTDataPlane, TopKDataPlane, replay_dataset, ttd_ecdf
from repro.dataplane.controller import Digest


@pytest.fixture(scope="module")
def splidt_dataplane(splidt_model, splidt_rules):
    return SpliDTDataPlane(splidt_model, splidt_rules, flow_slots=4096)


@pytest.fixture(scope="module")
def replay_result(splidt_model, splidt_rules, small_dataset):
    program = SpliDTDataPlane(splidt_model, splidt_rules, flow_slots=8192)
    subset = small_dataset.subset(np.arange(80))
    return replay_dataset(program, subset)


class TestSpliDTDataPlaneSetup:
    def test_register_allocation(self, splidt_dataplane, splidt_model):
        registers = splidt_dataplane.pipeline.registers
        assert "sid" in registers and "pkt_count" in registers
        k = splidt_model.config.features_per_subtree
        for slot in range(k):
            assert f"feature_slot_{slot}" in registers

    def test_rules_installed(self, splidt_dataplane):
        assert splidt_dataplane.controller.installed_entries > 0
        assert len(splidt_dataplane.pipeline.tables()) > 0

    def test_pipeline_fits_target(self, splidt_dataplane):
        report = splidt_dataplane.pipeline.resource_report()
        assert report.fits, report.violations


class TestSpliDTReplay:
    def test_every_flow_gets_a_verdict(self, replay_result):
        # Hash collisions between concurrent flows can corrupt a slot and cost
        # a verdict, exactly as on hardware; allow at most a couple of losses.
        assert len(replay_result.verdicts) >= 78

    def test_accuracy_beats_chance(self, replay_result, small_dataset):
        assert replay_result.report.f1_score > 1.0 / small_dataset.n_classes

    def test_labels_are_valid(self, replay_result, small_dataset):
        for verdict in replay_result.verdicts.values():
            assert 0 <= verdict.label < small_dataset.n_classes

    def test_ttd_non_negative_and_bounded_by_duration(self, replay_result, small_dataset):
        durations = {flow.flow_id: flow.duration for flow in small_dataset.flows[:80]}
        for flow_id, verdict in replay_result.verdicts.items():
            assert verdict.time_to_detection >= 0
            assert verdict.time_to_detection <= durations[flow_id] + 1e-6

    def test_recirculations_bounded_by_partitions(self, replay_result, splidt_model):
        for verdict in replay_result.verdicts.values():
            assert 0 <= verdict.n_recirculations <= splidt_model.n_partitions - 1

    def test_recirculation_stats_populated(self, replay_result):
        assert replay_result.recirculation["packets"] >= 0
        assert replay_result.recirculation["utilisation"] < 1.0

    def test_recirculation_packets_match_verdicts(self, splidt_model, splidt_rules, small_dataset):
        program = SpliDTDataPlane(splidt_model, splidt_rules, flow_slots=8192)
        subset = small_dataset.subset(np.arange(30))
        result = replay_dataset(program, subset)
        total_recirc = sum(v.n_recirculations for v in result.verdicts.values())
        assert result.recirculation["packets"] == total_recirc

    def test_dataplane_agrees_with_offline_model(self, splidt_model, splidt_rules, small_dataset, windowed3):
        """Packet-level execution should mostly match offline window inference."""
        program = SpliDTDataPlane(splidt_model, splidt_rules, flow_slots=8192)
        subset = small_dataset.subset(np.arange(60))
        result = replay_dataset(program, subset)
        offline = splidt_model.predict_windows(windowed3.window_features[:, :60, :])
        decided = [flow_id for flow_id in range(60) if flow_id in result.verdicts]
        assert len(decided) >= 58
        agreement = np.mean(
            [result.verdicts[flow_id].label == offline[flow_id] for flow_id in decided]
        )
        assert agreement >= 0.6

    def test_digests_delivered_to_controller(self, splidt_model, splidt_rules, small_dataset):
        program = SpliDTDataPlane(splidt_model, splidt_rules, flow_slots=8192)
        subset = small_dataset.subset(np.arange(10))
        replay_dataset(program, subset)
        digests = program.controller.digests
        assert len(digests) == 10
        assert all(isinstance(digest, Digest) for digest in digests)


class TestTopKDataPlane:
    def test_replay_produces_verdicts(self, windowed3, small_dataset):
        model = train_topk_model(windowed3, TopKConfig(depth=6, top_k=4))
        program = TopKDataPlane(model, flow_slots=8192)
        subset = small_dataset.subset(np.arange(50))
        result = replay_dataset(program, subset)
        assert len(result.verdicts) == 50
        assert result.report.f1_score > 1.0 / small_dataset.n_classes

    def test_no_recirculations(self, windowed3, small_dataset):
        model = train_topk_model(windowed3, TopKConfig(depth=6, top_k=4))
        program = TopKDataPlane(model, flow_slots=8192)
        result = replay_dataset(program, small_dataset.subset(np.arange(20)))
        assert all(v.n_recirculations == 0 for v in result.verdicts.values())


class TestTtdEcdf:
    def test_ecdf_shape_and_monotonicity(self, replay_result):
        values, probabilities = ttd_ecdf(replay_result.time_to_detection())
        assert values.shape == probabilities.shape
        assert np.all(np.diff(values) >= 0)
        assert np.all(np.diff(probabilities) >= 0)
        assert probabilities[-1] == pytest.approx(1.0)

    def test_empty_input(self):
        values, probabilities = ttd_ecdf(np.array([]))
        assert values.size == 0 and probabilities.size == 0
