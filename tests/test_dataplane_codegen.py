"""Unit tests for the P4-style code generator."""

from __future__ import annotations

from repro.dataplane.codegen import generate_p4_program, generate_table_entries


class TestGenerateP4Program:
    def test_program_contains_register_declarations(self, splidt_model, splidt_rules):
        program = generate_p4_program(splidt_model, splidt_rules)
        assert "reg_sid" in program
        assert "reg_pkt_count" in program
        for slot in range(splidt_model.config.features_per_subtree):
            assert f"reg_feature_slot_{slot}" in program

    def test_program_contains_one_mark_table_per_slot(self, splidt_model, splidt_rules):
        program = generate_p4_program(splidt_model, splidt_rules)
        for slot in range(splidt_model.config.features_per_subtree):
            assert f"table mark_slot_{slot}" in program
            assert f"table operator_select_{slot}" in program

    def test_program_contains_model_table_and_recirculation(self, splidt_model, splidt_rules):
        program = generate_p4_program(splidt_model, splidt_rules)
        assert "table splidt_model" in program
        assert "resubmit_with_next_sid" in program
        assert "digest_classification" in program

    def test_flow_slots_parameter(self, splidt_model, splidt_rules):
        program = generate_p4_program(splidt_model, splidt_rules, flow_slots=1024)
        assert "(1024)" in program

    def test_summary_comment_reflects_model(self, splidt_model, splidt_rules):
        program = generate_p4_program(splidt_model, splidt_rules)
        assert f"{splidt_model.n_subtrees} subtrees" in program
        assert f"{splidt_rules.n_entries} TCAM entries" in program


class TestGenerateTableEntries:
    def test_entry_count_matches_rule_set(self, splidt_model, splidt_rules):
        entries = generate_table_entries(splidt_model, splidt_rules)
        mark_entries = [e for e in entries if e["table"].startswith("mark_slot_")]
        model_entries = [e for e in entries if e["table"] == "splidt_model"]
        assert len(mark_entries) == splidt_rules.n_feature_entries
        assert len(model_entries) == splidt_rules.n_model_entries

    def test_every_entry_carries_a_sid(self, splidt_model, splidt_rules):
        entries = generate_table_entries(splidt_model, splidt_rules)
        sids = {entry["sid"] for entry in entries}
        assert sids == set(splidt_model.subtrees)

    def test_model_entries_reference_feature_names(self, splidt_model, splidt_rules):
        from repro.features.definitions import feature_names
        names = set(feature_names())
        entries = generate_table_entries(splidt_model, splidt_rules)
        for entry in entries:
            if entry["table"] == "splidt_model":
                assert set(entry["mark_intervals"]) <= names

    def test_mark_entries_have_value_and_mask(self, splidt_model, splidt_rules):
        entries = generate_table_entries(splidt_model, splidt_rules)
        for entry in entries:
            if entry["table"].startswith("mark_slot_"):
                assert 0 <= entry["value"] < 2**32
                assert 0 <= entry["mask"] < 2**32
