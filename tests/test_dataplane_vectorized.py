"""Engine-parity tests: the vectorized replay must match the reference loop.

The contract (see ``repro/dataplane/vectorized.py``): for any dataset,
``replay_dataset(..., engine="vectorized")`` produces bit-identical verdicts
(label, decision time, first-packet time, recirculation count, early-exit
flag), time-to-detection arrays and recirculation statistics to
``engine="reference"``.  The suite exercises several D-datasets, jittered
concurrent starts, ``max_flows`` truncation, and a deliberately tiny register
file that forces hash collisions (the scalar-fallback path).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import core, datasets
from repro.baselines import train_topk_model
from repro.core.config import TopKConfig
from repro.core.range_marking import generate_rules
from repro.dataplane import SpliDTDataPlane, TopKDataPlane, replay_dataset
from repro.datasets.flows import PacketArrays


def _assert_identical(reference, vectorized):
    """Field-by-field equality of two ReplayResults."""
    assert set(reference.verdicts) == set(vectorized.verdicts)
    for flow_id, ref_verdict in reference.verdicts.items():
        vec_verdict = vectorized.verdicts[flow_id]
        assert ref_verdict.label == vec_verdict.label
        assert ref_verdict.decided_at == vec_verdict.decided_at
        assert ref_verdict.first_packet_at == vec_verdict.first_packet_at
        assert ref_verdict.n_recirculations == vec_verdict.n_recirculations
        assert ref_verdict.early_exit == vec_verdict.early_exit
    assert np.array_equal(reference.time_to_detection(), vectorized.time_to_detection())
    assert np.array_equal(
        reference.recirculations_per_flow(), vectorized.recirculations_per_flow()
    )
    assert reference.labels == vectorized.labels
    assert reference.report.f1_score == vectorized.report.f1_score
    assert reference.report.accuracy == vectorized.report.accuracy
    assert reference.recirculation == vectorized.recirculation


def _splidt_artifacts(key: str, *, n_flows: int, depth: int, k: int, partitions: int, seed: int):
    dataset = datasets.load_dataset(key, n_flows=n_flows, seed=seed)
    store = datasets.DatasetStore(dataset, random_state=seed)
    windowed = store.fetch(partitions)
    base = depth // partitions
    sizes = tuple([base] * (partitions - 1) + [depth - base * (partitions - 1)])
    config = core.SpliDTConfig(
        depth=depth, features_per_subtree=k, partition_sizes=sizes
    )
    model = core.train_partitioned_tree(windowed, config, random_state=seed)
    training = np.vstack(
        [windowed.partition_matrix(p, "train") for p in range(partitions)]
    )
    rules = generate_rules(model, training)
    return dataset, model, rules


class TestSpliDTParity:
    @pytest.fixture(scope="class")
    def artifacts(self, splidt_model, splidt_rules, small_dataset):
        return small_dataset, splidt_model, splidt_rules

    def _both(self, artifacts, *, flow_slots=8192, **kwargs):
        dataset, model, rules = artifacts
        reference = replay_dataset(
            SpliDTDataPlane(model, rules, flow_slots=flow_slots),
            dataset,
            engine="reference",
            **kwargs,
        )
        vectorized = replay_dataset(
            SpliDTDataPlane(model, rules, flow_slots=flow_slots),
            dataset,
            engine="vectorized",
            **kwargs,
        )
        return reference, vectorized

    def test_plain_replay(self, artifacts):
        _assert_identical(*self._both(artifacts))

    def test_jittered_starts(self, artifacts):
        _assert_identical(*self._both(artifacts, jitter_starts=True, seed=5))

    def test_max_flows_truncation(self, artifacts):
        _assert_identical(*self._both(artifacts, max_flows=97))

    def test_forced_collisions_use_scalar_path(self, artifacts):
        # 64 slots for 360 flows: most flows collide and take the per-packet
        # fallback; the rest stay batched.  The mixture must still be exact.
        _assert_identical(*self._both(artifacts, flow_slots=64))

    def test_collisions_with_jitter(self, artifacts):
        _assert_identical(
            *self._both(artifacts, flow_slots=128, jitter_starts=True, seed=2)
        )

    def test_single_flow(self, artifacts):
        _assert_identical(*self._both(artifacts, max_flows=1))


@pytest.mark.parametrize(
    "key,depth,k,partitions",
    [("D1", 8, 6, 4), ("D2", 10, 5, 5), ("D4", 8, 8, 2)],
)
def test_splidt_parity_across_datasets(key, depth, k, partitions):
    """Different datasets/configs activate different feature kernels."""
    dataset, model, rules = _splidt_artifacts(
        key, n_flows=120, depth=depth, k=k, partitions=partitions, seed=13
    )
    reference = replay_dataset(
        SpliDTDataPlane(model, rules, flow_slots=8192),
        dataset,
        engine="reference",
        jitter_starts=True,
    )
    vectorized = replay_dataset(
        SpliDTDataPlane(model, rules, flow_slots=8192),
        dataset,
        engine="vectorized",
        jitter_starts=True,
    )
    _assert_identical(reference, vectorized)


class TestTopKParity:
    @pytest.fixture(scope="class")
    def topk_model(self, windowed3):
        return train_topk_model(windowed3, TopKConfig(depth=6, top_k=4))

    def _both(self, model, dataset, *, flow_slots=8192, **kwargs):
        reference = replay_dataset(
            TopKDataPlane(model, flow_slots=flow_slots),
            dataset,
            engine="reference",
            **kwargs,
        )
        vectorized = replay_dataset(
            TopKDataPlane(model, flow_slots=flow_slots),
            dataset,
            engine="vectorized",
            **kwargs,
        )
        return reference, vectorized

    def test_plain_replay(self, topk_model, small_dataset):
        _assert_identical(*self._both(topk_model, small_dataset))

    def test_jittered_starts(self, topk_model, small_dataset):
        _assert_identical(
            *self._both(topk_model, small_dataset, jitter_starts=True, seed=9)
        )

    def test_max_flows_truncation(self, topk_model, small_dataset):
        _assert_identical(*self._both(topk_model, small_dataset, max_flows=50))

    def test_forced_collisions(self, topk_model, small_dataset):
        _assert_identical(*self._both(topk_model, small_dataset, flow_slots=64))


class TestPacketArrays:
    def test_flow_major_layout(self, small_dataset):
        soa = small_dataset.packet_arrays()
        assert soa.n_flows == small_dataset.n_flows
        assert soa.n_packets == sum(f.n_packets for f in small_dataset.flows)
        for index in (0, 7, soa.n_flows - 1):
            flow = small_dataset.flows[index]
            window = soa.flow_slice(index)
            assert np.array_equal(
                soa.timestamps[window], [p.timestamp for p in flow.packets]
            )
            assert np.array_equal(soa.sizes[window], [p.size for p in flow.packets])

    def test_interleave_matches_event_sort(self, small_dataset):
        soa = small_dataset.packet_arrays()
        events = []
        for index, flow in enumerate(small_dataset.flows):
            for offset, packet in enumerate(flow.packets):
                events.append(
                    (packet.timestamp, flow.flow_id, int(soa.flow_starts[index]) + offset)
                )
        events.sort(key=lambda item: (item[0], item[1]))
        assert np.array_equal(soa.interleave_order, [position for _, _, position in events])

    def test_empty(self):
        soa = PacketArrays.from_flows([])
        assert soa.n_flows == 0 and soa.n_packets == 0

    def test_rejects_unknown_engine(self, small_dataset, splidt_model, splidt_rules):
        program = SpliDTDataPlane(splidt_model, splidt_rules)
        with pytest.raises(ValueError, match="unknown engine"):
            replay_dataset(program, small_dataset, engine="warp")


class TestLastWindowSemantics:
    """Regression suite pinning `step_windows`' last-window mask logic.

    The advance/early-exit masks are explicit boolean arrays; at the last
    window a ``next``-subtree outcome must *not* advance (the flow gets the
    default label) and an exit outcome is not an early exit.
    """

    def _program_and_rows(self, splidt_model, splidt_rules, windowed3, kind):
        """A fresh program plus feature rows classifying as ``kind`` in some subtree.

        ``step_windows``' mask logic depends only on the outcome kinds and
        the window index, so any subtree with the wanted outcome serves.
        """
        from repro.core.range_marking import KIND_EXIT, KIND_NEXT

        program = SpliDTDataPlane(splidt_model, splidt_rules, flow_slots=4096)
        matrix = np.vstack([windowed3.partition_matrix(p, "train") for p in range(3)])
        target = KIND_NEXT if kind == "next" else KIND_EXIT
        for sid in splidt_rules.subtree_rules:
            kinds, values = splidt_rules.classify_batch(sid, matrix)
            rows = np.flatnonzero(kinds == target)[:4]
            if rows.size:
                return program, matrix[rows], values[rows], sid
        raise AssertionError(f"model has no {kind} outcome in any subtree")

    def _step(self, program, features, sid, window_index):
        n = features.shape[0]
        return program.step_windows(
            flow_ids=np.arange(n, dtype=np.int64),
            slots=np.arange(n, dtype=np.intp),
            sids=np.full(n, sid, dtype=np.int64),
            window_index=window_index,
            feature_matrix=features,
            boundary_ts=np.full(n, 2.0),
            first_packet_ts=np.zeros(n),
            packets_seen=np.full(n, 9.0),
        )

    def test_next_outcome_does_not_advance_at_last_window(
        self, splidt_model, splidt_rules, windowed3
    ):
        program, features, values, root = self._program_and_rows(
            splidt_model, splidt_rules, windowed3, "next"
        )
        last = splidt_model.config.n_partitions - 1
        advance, _ = self._step(program, features, root, last)
        assert isinstance(advance, np.ndarray) and advance.dtype == np.bool_
        assert not advance.any()
        for verdict in program.verdicts.values():
            assert verdict.label == splidt_model.default_label
            assert verdict.early_exit is False
            assert verdict.n_recirculations == last

    def test_next_outcome_advances_before_last_window(
        self, splidt_model, splidt_rules, windowed3
    ):
        program, features, values, root = self._program_and_rows(
            splidt_model, splidt_rules, windowed3, "next"
        )
        advance, next_sids = self._step(program, features, root, 0)
        assert advance.dtype == np.bool_
        assert advance.all()
        assert np.array_equal(next_sids, values)
        assert not program.verdicts

    def test_exit_at_last_window_is_not_early(
        self, splidt_model, splidt_rules, windowed3
    ):
        program, features, values, root = self._program_and_rows(
            splidt_model, splidt_rules, windowed3, "exit"
        )
        last = splidt_model.config.n_partitions - 1
        advance, _ = self._step(program, features, root, last)
        assert not advance.any()
        verdicts = program.verdicts
        assert len(verdicts) == features.shape[0]
        for flow_id, verdict in verdicts.items():
            assert verdict.label == int(values[flow_id])
            assert verdict.early_exit is False

    def test_exit_before_last_window_is_early(
        self, splidt_model, splidt_rules, windowed3
    ):
        program, features, values, root = self._program_and_rows(
            splidt_model, splidt_rules, windowed3, "exit"
        )
        advance, _ = self._step(program, features, root, 0)
        assert not advance.any()
        for verdict in program.verdicts.values():
            assert verdict.early_exit is True


class TestLookupModes:
    """The lookup knob must not change a single replayed bit."""

    def test_vectorized_replay_scan_vs_lut(self, small_dataset, splidt_model, splidt_rules):
        results = {}
        try:
            for mode in ("scan", "lut"):
                splidt_rules.set_lookup(mode)
                program = SpliDTDataPlane(splidt_model, splidt_rules, flow_slots=8192)
                results[mode] = replay_dataset(
                    program, small_dataset, max_flows=150, engine="vectorized"
                )
        finally:
            # splidt_rules is session-scoped: restore the default even when
            # the replay raises, so later tests never inherit scan mode.
            splidt_rules.set_lookup("lut")
        _assert_identical(results["scan"], results["lut"])


def test_replay_arrays_matches_replay_dataset(small_dataset, splidt_model, splidt_rules):
    """`replay_arrays` (the documented public batch entry) works standalone.

    Regression: it used to crash with a NameError on its occupancy table
    because the serve engines bypassed it in normal runs.
    """
    from repro.dataplane.vectorized import replay_arrays

    flows = small_dataset.flows[:80]
    program = SpliDTDataPlane(splidt_model, splidt_rules, flow_slots=8192)
    replay_arrays(program, flows)
    baseline = SpliDTDataPlane(splidt_model, splidt_rules, flow_slots=8192)
    expected = replay_dataset(baseline, small_dataset, max_flows=80, engine="vectorized")
    assert set(program.verdicts) == set(expected.verdicts)
    for flow_id, verdict in program.verdicts.items():
        other = expected.verdicts[flow_id]
        assert (verdict.label, verdict.decided_at, verdict.early_exit) == (
            other.label,
            other.decided_at,
            other.early_exit,
        )
