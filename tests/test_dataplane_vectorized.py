"""Engine-parity tests: the vectorized replay must match the reference loop.

The contract (see ``repro/dataplane/vectorized.py``): for any dataset,
``replay_dataset(..., engine="vectorized")`` produces bit-identical verdicts
(label, decision time, first-packet time, recirculation count, early-exit
flag), time-to-detection arrays and recirculation statistics to
``engine="reference"``.  The suite exercises several D-datasets, jittered
concurrent starts, ``max_flows`` truncation, and a deliberately tiny register
file that forces hash collisions (the scalar-fallback path).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import core, datasets
from repro.baselines import train_topk_model
from repro.core.config import TopKConfig
from repro.core.range_marking import generate_rules
from repro.dataplane import SpliDTDataPlane, TopKDataPlane, replay_dataset
from repro.datasets.flows import PacketArrays


def _assert_identical(reference, vectorized):
    """Field-by-field equality of two ReplayResults."""
    assert set(reference.verdicts) == set(vectorized.verdicts)
    for flow_id, ref_verdict in reference.verdicts.items():
        vec_verdict = vectorized.verdicts[flow_id]
        assert ref_verdict.label == vec_verdict.label
        assert ref_verdict.decided_at == vec_verdict.decided_at
        assert ref_verdict.first_packet_at == vec_verdict.first_packet_at
        assert ref_verdict.n_recirculations == vec_verdict.n_recirculations
        assert ref_verdict.early_exit == vec_verdict.early_exit
    assert np.array_equal(reference.time_to_detection(), vectorized.time_to_detection())
    assert np.array_equal(
        reference.recirculations_per_flow(), vectorized.recirculations_per_flow()
    )
    assert reference.labels == vectorized.labels
    assert reference.report.f1_score == vectorized.report.f1_score
    assert reference.report.accuracy == vectorized.report.accuracy
    assert reference.recirculation == vectorized.recirculation


def _splidt_artifacts(key: str, *, n_flows: int, depth: int, k: int, partitions: int, seed: int):
    dataset = datasets.load_dataset(key, n_flows=n_flows, seed=seed)
    store = datasets.DatasetStore(dataset, random_state=seed)
    windowed = store.fetch(partitions)
    base = depth // partitions
    sizes = tuple([base] * (partitions - 1) + [depth - base * (partitions - 1)])
    config = core.SpliDTConfig(
        depth=depth, features_per_subtree=k, partition_sizes=sizes
    )
    model = core.train_partitioned_tree(windowed, config, random_state=seed)
    training = np.vstack(
        [windowed.partition_matrix(p, "train") for p in range(partitions)]
    )
    rules = generate_rules(model, training)
    return dataset, model, rules


class TestSpliDTParity:
    @pytest.fixture(scope="class")
    def artifacts(self, splidt_model, splidt_rules, small_dataset):
        return small_dataset, splidt_model, splidt_rules

    def _both(self, artifacts, *, flow_slots=8192, **kwargs):
        dataset, model, rules = artifacts
        reference = replay_dataset(
            SpliDTDataPlane(model, rules, flow_slots=flow_slots),
            dataset,
            engine="reference",
            **kwargs,
        )
        vectorized = replay_dataset(
            SpliDTDataPlane(model, rules, flow_slots=flow_slots),
            dataset,
            engine="vectorized",
            **kwargs,
        )
        return reference, vectorized

    def test_plain_replay(self, artifacts):
        _assert_identical(*self._both(artifacts))

    def test_jittered_starts(self, artifacts):
        _assert_identical(*self._both(artifacts, jitter_starts=True, seed=5))

    def test_max_flows_truncation(self, artifacts):
        _assert_identical(*self._both(artifacts, max_flows=97))

    def test_forced_collisions_use_scalar_path(self, artifacts):
        # 64 slots for 360 flows: most flows collide and take the per-packet
        # fallback; the rest stay batched.  The mixture must still be exact.
        _assert_identical(*self._both(artifacts, flow_slots=64))

    def test_collisions_with_jitter(self, artifacts):
        _assert_identical(
            *self._both(artifacts, flow_slots=128, jitter_starts=True, seed=2)
        )

    def test_single_flow(self, artifacts):
        _assert_identical(*self._both(artifacts, max_flows=1))


@pytest.mark.parametrize(
    "key,depth,k,partitions",
    [("D1", 8, 6, 4), ("D2", 10, 5, 5), ("D4", 8, 8, 2)],
)
def test_splidt_parity_across_datasets(key, depth, k, partitions):
    """Different datasets/configs activate different feature kernels."""
    dataset, model, rules = _splidt_artifacts(
        key, n_flows=120, depth=depth, k=k, partitions=partitions, seed=13
    )
    reference = replay_dataset(
        SpliDTDataPlane(model, rules, flow_slots=8192),
        dataset,
        engine="reference",
        jitter_starts=True,
    )
    vectorized = replay_dataset(
        SpliDTDataPlane(model, rules, flow_slots=8192),
        dataset,
        engine="vectorized",
        jitter_starts=True,
    )
    _assert_identical(reference, vectorized)


class TestTopKParity:
    @pytest.fixture(scope="class")
    def topk_model(self, windowed3):
        return train_topk_model(windowed3, TopKConfig(depth=6, top_k=4))

    def _both(self, model, dataset, *, flow_slots=8192, **kwargs):
        reference = replay_dataset(
            TopKDataPlane(model, flow_slots=flow_slots),
            dataset,
            engine="reference",
            **kwargs,
        )
        vectorized = replay_dataset(
            TopKDataPlane(model, flow_slots=flow_slots),
            dataset,
            engine="vectorized",
            **kwargs,
        )
        return reference, vectorized

    def test_plain_replay(self, topk_model, small_dataset):
        _assert_identical(*self._both(topk_model, small_dataset))

    def test_jittered_starts(self, topk_model, small_dataset):
        _assert_identical(
            *self._both(topk_model, small_dataset, jitter_starts=True, seed=9)
        )

    def test_max_flows_truncation(self, topk_model, small_dataset):
        _assert_identical(*self._both(topk_model, small_dataset, max_flows=50))

    def test_forced_collisions(self, topk_model, small_dataset):
        _assert_identical(*self._both(topk_model, small_dataset, flow_slots=64))


class TestPacketArrays:
    def test_flow_major_layout(self, small_dataset):
        soa = small_dataset.packet_arrays()
        assert soa.n_flows == small_dataset.n_flows
        assert soa.n_packets == sum(f.n_packets for f in small_dataset.flows)
        for index in (0, 7, soa.n_flows - 1):
            flow = small_dataset.flows[index]
            window = soa.flow_slice(index)
            assert np.array_equal(
                soa.timestamps[window], [p.timestamp for p in flow.packets]
            )
            assert np.array_equal(soa.sizes[window], [p.size for p in flow.packets])

    def test_interleave_matches_event_sort(self, small_dataset):
        soa = small_dataset.packet_arrays()
        events = []
        for index, flow in enumerate(small_dataset.flows):
            for offset, packet in enumerate(flow.packets):
                events.append(
                    (packet.timestamp, flow.flow_id, int(soa.flow_starts[index]) + offset)
                )
        events.sort(key=lambda item: (item[0], item[1]))
        assert np.array_equal(soa.interleave_order, [position for _, _, position in events])

    def test_empty(self):
        soa = PacketArrays.from_flows([])
        assert soa.n_flows == 0 and soa.n_packets == 0

    def test_rejects_unknown_engine(self, small_dataset, splidt_model, splidt_rules):
        program = SpliDTDataPlane(splidt_model, splidt_rules)
        with pytest.raises(ValueError, match="unknown engine"):
            replay_dataset(program, small_dataset, engine="warp")
