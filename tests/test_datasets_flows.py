"""Unit tests for the packet/flow data model."""

from __future__ import annotations

import numpy as np

from repro.datasets.flows import FiveTuple, Flow, FlowDataset, Packet, TCP_FLAGS


def _flow(label: int = 0, n: int = 5) -> Flow:
    packets = [Packet(timestamp=i * 0.5, size=100 + i * 10) for i in range(n)]
    return Flow(FiveTuple(1, 2, 10, 20, 6), packets, label=label, flow_id=label)


class TestFiveTuple:
    def test_as_bytes_length(self):
        assert len(FiveTuple(1, 2, 3, 4, 6).as_bytes()) == 13

    def test_as_bytes_distinguishes_flows(self):
        a = FiveTuple(1, 2, 3, 4, 6).as_bytes()
        b = FiveTuple(1, 2, 3, 5, 6).as_bytes()
        assert a != b

    def test_hashable_and_equal(self):
        assert FiveTuple(1, 2, 3, 4, 6) == FiveTuple(1, 2, 3, 4, 6)
        assert hash(FiveTuple(1, 2, 3, 4, 6)) == hash(FiveTuple(1, 2, 3, 4, 6))


class TestPacket:
    def test_flag_helper(self):
        packet = Packet(timestamp=0.0, size=60, flags=TCP_FLAGS["SYN"] | TCP_FLAGS["ACK"])
        assert packet.has_flag("SYN")
        assert packet.has_flag("ACK")
        assert not packet.has_flag("FIN")


class TestFlow:
    def test_counts_and_bytes(self):
        flow = _flow(n=5)
        assert flow.n_packets == 5
        assert flow.n_bytes == sum(100 + i * 10 for i in range(5))

    def test_duration(self):
        assert _flow(n=5).duration == 2.0

    def test_duration_single_packet(self):
        assert _flow(n=1).duration == 0.0

    def test_sorted_by_time(self):
        packets = [Packet(timestamp=t, size=100) for t in (3.0, 1.0, 2.0)]
        flow = Flow(FiveTuple(1, 2, 3, 4, 6), packets, label=0)
        ordered = flow.sorted_by_time()
        assert [p.timestamp for p in ordered.packets] == [1.0, 2.0, 3.0]
        # Original is untouched.
        assert [p.timestamp for p in flow.packets] == [3.0, 1.0, 2.0]


class TestFlowDataset:
    def _dataset(self) -> FlowDataset:
        flows = [_flow(label=i % 3) for i in range(9)]
        return FlowDataset("T", "test", flows, class_names=["a", "b", "c"])

    def test_basic_counts(self):
        dataset = self._dataset()
        assert dataset.n_flows == 9
        assert dataset.n_classes == 3

    def test_labels_vector(self):
        labels = self._dataset().labels()
        assert labels.shape == (9,)
        assert set(labels) == {0, 1, 2}

    def test_class_counts(self):
        np.testing.assert_array_equal(self._dataset().class_counts(), [3, 3, 3])

    def test_subset(self):
        dataset = self._dataset()
        subset = dataset.subset(np.array([0, 1, 2]))
        assert subset.n_flows == 3
        assert subset.class_names == dataset.class_names
