"""Unit tests for the synthetic traffic generators (D1–D7)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.generators import (
    ATTRIBUTE_GROUPS,
    N_LEVELS,
    N_PHASES,
    SyntheticTrafficGenerator,
    generate_dataset,
)
from repro.datasets.profiles import DATASET_KEYS, get_profile
from repro.datasets.registry import available_datasets, dataset_summary, load_dataset


class TestProfiles:
    def test_all_seven_datasets_available(self):
        assert available_datasets() == ("D1", "D2", "D3", "D4", "D5", "D6", "D7")

    def test_class_counts_match_paper_table2(self):
        expected = {"D1": 19, "D2": 4, "D3": 13, "D4": 11, "D5": 32, "D6": 10, "D7": 10}
        for key, classes in expected.items():
            assert get_profile(key).n_classes == classes

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError):
            get_profile("D99")

    def test_summary_contains_source(self):
        summary = dataset_summary("D3")
        assert summary["classes"] == 13
        assert "VPN" in summary["source"]


class TestGenerator:
    def test_generates_requested_flow_count(self):
        dataset = generate_dataset("D2", n_flows=50, seed=0)
        assert dataset.n_flows == 50

    def test_every_class_present(self):
        # Every class is seeded at least once before label noise is applied,
        # so nearly all of the 19 classes must survive even in a small sample.
        dataset = generate_dataset("D1", n_flows=120, seed=0)
        assert len(set(dataset.labels())) >= 18

    def test_labels_within_range(self):
        dataset = generate_dataset("D5", n_flows=64, seed=1)
        assert dataset.labels().max() < 32
        assert dataset.labels().min() >= 0

    def test_deterministic_for_same_seed(self):
        a = generate_dataset("D3", n_flows=30, seed=5)
        b = generate_dataset("D3", n_flows=30, seed=5)
        assert a.labels().tolist() == b.labels().tolist()
        assert a.flows[0].n_packets == b.flows[0].n_packets
        assert a.flows[0].packets[0].size == b.flows[0].packets[0].size

    def test_different_seeds_differ(self):
        a = generate_dataset("D3", n_flows=30, seed=1)
        b = generate_dataset("D3", n_flows=30, seed=2)
        assert a.flows[0].packets[0].timestamp != b.flows[0].packets[0].timestamp

    def test_too_few_flows_raises(self):
        with pytest.raises(ValueError):
            generate_dataset("D5", n_flows=10, seed=0)

    def test_flows_have_monotone_timestamps(self):
        dataset = generate_dataset("D4", n_flows=20, seed=0)
        for flow in dataset.flows[:10]:
            times = [p.timestamp for p in flow.packets]
            assert all(b > a for a, b in zip(times, times[1:]))

    def test_packet_sizes_within_ethernet_bounds(self):
        dataset = generate_dataset("D6", n_flows=20, seed=0)
        for flow in dataset.flows:
            for packet in flow.packets:
                assert 40 <= packet.size <= 1514

    def test_class_names_aligned_with_labels(self):
        dataset = generate_dataset("D2", n_flows=20, seed=0)
        for flow in dataset.flows:
            assert dataset.class_names[flow.label] == flow.class_name

    def test_explicit_rng_matches_equivalent_seed(self):
        # Passing the generator's own derived rng explicitly must reproduce
        # the seed-only dataset bit for bit (the rng parameter changes where
        # the stream comes from, never how it is consumed).
        profile = get_profile("D3")
        seeded = SyntheticTrafficGenerator(profile, seed=5)
        explicit = SyntheticTrafficGenerator(
            profile, seed=5, rng=np.random.default_rng(seeded._dataset_seed())
        )
        a, b = seeded.generate(30), explicit.generate(30)
        assert a.labels().tolist() == b.labels().tolist()
        for fa, fb in zip(a.flows, b.flows):
            assert fa.five_tuple == fb.five_tuple
            assert [p.timestamp for p in fa.packets] == [p.timestamp for p in fb.packets]

    def test_shared_rng_decouples_flows_from_signatures(self):
        # Two generators drawing from one shared stream produce different
        # traffic but identical class signatures (signatures are a pure
        # function of profile+seed, untouched by the rng parameter).
        profile = get_profile("D2")
        shared = np.random.default_rng(99)
        first = SyntheticTrafficGenerator(profile, seed=5, rng=shared)
        second = SyntheticTrafficGenerator(profile, seed=5, rng=shared)
        a, b = first.generate(20), second.generate(20)
        assert a.flows[0].packets[0].timestamp != b.flows[0].packets[0].timestamp
        assert [s.levels for s in first.signatures] == [s.levels for s in second.signatures]

    def test_iter_flows_matches_generate(self):
        profile = get_profile("D4")
        streamed = list(SyntheticTrafficGenerator(profile, seed=3).iter_flows(25))
        materialised = SyntheticTrafficGenerator(profile, seed=3).generate(25).flows
        assert len(streamed) == len(materialised)
        for fa, fb in zip(streamed, materialised):
            assert fa.five_tuple == fb.five_tuple
            assert fa.label == fb.label
            assert [p.size for p in fa.packets] == [p.size for p in fb.packets]


class TestSignatures:
    def test_signature_levels_cover_all_groups(self):
        generator = SyntheticTrafficGenerator(get_profile("D3"), seed=0)
        for signature in generator.signatures:
            assert set(signature.levels) == {g.name for g in ATTRIBUTE_GROUPS}
            assert all(0 <= level < N_LEVELS for level in signature.levels.values())

    def test_signatures_differ_between_classes(self):
        generator = SyntheticTrafficGenerator(get_profile("D1"), seed=0)
        codes = {tuple(sorted(s.levels.items())) for s in generator.signatures}
        assert len(codes) > 1

    def test_minimum_informative_groups(self):
        generator = SyntheticTrafficGenerator(get_profile("D3"), seed=0)
        minimum = max(3, get_profile("D3").signature_features)
        for signature in generator.signatures:
            non_neutral = sum(1 for level in signature.levels.values() if level != 1)
            assert non_neutral >= minimum

    def test_group_phases_span_all_phases(self):
        phases = {g.phase for g in ATTRIBUTE_GROUPS if g.phase is not None}
        assert phases == set(range(N_PHASES))

    def test_attribute_group_value_interpolation(self):
        group = ATTRIBUTE_GROUPS[0]
        neutral = group.value(1, group.phase, 1.0)
        low = group.value(0, group.phase, 1.0)
        high = group.value(2, group.phase, 1.0)
        assert low < neutral < high
        # Outside the expressed phase the value collapses towards neutral.
        other_phase = (group.phase + 1) % N_PHASES
        assert abs(group.value(2, other_phase, 1.0) - neutral) < abs(high - neutral)


class TestDatasetLearnability:
    def test_windows_carry_class_signal(self):
        """A full-feature tree on window features must beat random guessing."""
        from repro.datasets.materialize import materialize
        from repro.ml import DecisionTreeClassifier
        from repro.ml.metrics import f1_score

        dataset = load_dataset("D2", n_flows=240, seed=3)
        windowed = materialize(dataset, 2, random_state=3)
        X_train = np.hstack([windowed.partition_matrix(p, "train") for p in range(2)])
        X_test = np.hstack([windowed.partition_matrix(p, "test") for p in range(2)])
        tree = DecisionTreeClassifier(max_depth=10, min_samples_leaf=3)
        tree.fit(X_train, windowed.split_labels("train"))
        score = f1_score(windowed.split_labels("test"), tree.predict(X_test), "weighted")
        assert score > 1.5 / windowed.n_classes
