"""Unit tests for dataset materialisation and the dataset store."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.materialize import DatasetStore, materialize
from repro.datasets.registry import load_dataset, load_windowed
from repro.features.definitions import N_FEATURES, STATEFUL_INDICES


class TestMaterialize:
    def test_shapes(self, small_dataset):
        windowed = materialize(small_dataset, 4, random_state=0)
        assert windowed.window_features.shape == (4, small_dataset.n_flows, N_FEATURES)
        assert windowed.flow_features.shape == (small_dataset.n_flows, N_FEATURES)
        assert windowed.packet_features.shape == (small_dataset.n_flows, N_FEATURES)
        assert windowed.labels.shape == (small_dataset.n_flows,)

    def test_train_test_split_disjoint_and_complete(self, windowed3):
        train = set(windowed3.train_indices.tolist())
        test = set(windowed3.test_indices.tolist())
        assert train.isdisjoint(test)
        assert len(train | test) == windowed3.n_flows

    def test_packet_features_only_stateless(self, windowed3):
        stateful = list(STATEFUL_INDICES)
        assert np.all(windowed3.packet_features[:, stateful] == 0)

    def test_window_pkt_counts_sum_to_flow(self, small_dataset, windowed3):
        from repro.features.definitions import FEATURES_BY_NAME
        index = FEATURES_BY_NAME["pkt_count"].index
        window_sum = windowed3.window_features[:, :, index].sum(axis=0)
        flow_counts = np.array([flow.n_packets for flow in small_dataset.flows], dtype=float)
        np.testing.assert_allclose(window_sum, flow_counts)

    def test_partition_matrix_matches_split(self, windowed3):
        train = windowed3.partition_matrix(0, "train")
        assert train.shape[0] == windowed3.train_indices.shape[0]
        test = windowed3.partition_matrix(2, "test")
        assert test.shape[0] == windowed3.test_indices.shape[0]

    def test_all_split(self, windowed3):
        assert windowed3.flow_matrix("all").shape[0] == windowed3.n_flows

    def test_invalid_split_name(self, windowed3):
        with pytest.raises(ValueError):
            windowed3.split_labels("validation")

    def test_invalid_partition_count(self, small_dataset):
        with pytest.raises(ValueError):
            materialize(small_dataset, 0)

    def test_with_precision_bounds_values(self, windowed3):
        quantised = windowed3.with_precision(8)
        assert quantised.flow_features.max() <= 255
        assert quantised.metadata["bit_width"] == 8
        # Original untouched.
        assert windowed3.flow_features.max() > 255


class TestDatasetStore:
    def test_fetch_caches(self, small_dataset):
        store = DatasetStore(small_dataset)
        first = store.fetch(2)
        second = store.fetch(2)
        assert first is second
        assert store.fetch_count == 2
        assert store.miss_count == 1

    def test_fetch_different_partitions(self, small_dataset):
        store = DatasetStore(small_dataset)
        assert store.fetch(2).n_partitions == 2
        assert store.fetch(5).n_partitions == 5
        assert 2 in store and 5 in store and 3 not in store


class TestRegistry:
    def test_load_windowed_convenience(self):
        windowed = load_windowed("D2", n_partitions=2, n_flows=40, seed=0)
        assert windowed.n_partitions == 2
        assert windowed.n_classes == 4

    def test_load_dataset_default_size(self):
        dataset = load_dataset("D2", n_flows=30, seed=0)
        assert dataset.name == "D2"
