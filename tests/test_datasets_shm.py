"""Shared-memory lifecycle tests for :mod:`repro.datasets.shm`.

The process-sharded serving engine depends on three properties checked
here: attach is a bit-exact zero-copy view of every column, close/unlink
are idempotent in any order, and an unlinked segment leaves no trace under
``/dev/shm``.
"""

from __future__ import annotations

import os
from dataclasses import fields

import numpy as np
import pytest

from repro.datasets.flows import PacketArrays
from repro.datasets.shm import SEGMENT_PREFIX, SharedPacketArrays


def _segment_exists(name: str) -> bool:
    return os.path.exists(os.path.join("/dev/shm", name))


@pytest.fixture()
def soa(small_dataset) -> PacketArrays:
    return small_dataset.packet_arrays()


class TestRoundTrip:
    def test_every_column_is_bit_identical(self, soa):
        shared = SharedPacketArrays.create(soa)
        try:
            view = SharedPacketArrays.attach(shared.layout)
            for field_ in fields(PacketArrays):
                if not field_.init:
                    continue  # process-local caches are not shared columns
                original = getattr(soa, field_.name)
                copy = getattr(view.arrays, field_.name)
                assert copy.dtype == original.dtype, field_.name
                assert np.array_equal(copy, original), field_.name
            view.close()
        finally:
            shared.unlink()
            shared.close()

    def test_attached_view_is_zero_copy(self, soa):
        # Writing through the owner's segment must be visible to the
        # attacher: both sides map the same pages.
        shared = SharedPacketArrays.create(soa)
        try:
            writer = SharedPacketArrays.attach(shared.layout)
            reader = SharedPacketArrays.attach(shared.layout)
            writer.arrays.timestamps[0] = 123.456
            assert reader.arrays.timestamps[0] == 123.456
            writer.close()
            reader.close()
        finally:
            shared.unlink()
            shared.close()

    def test_layout_is_picklable(self, soa):
        import pickle

        shared = SharedPacketArrays.create(soa)
        try:
            layout = pickle.loads(pickle.dumps(shared.layout))
            view = SharedPacketArrays.attach(layout)
            assert view.arrays.n_packets == soa.n_packets
            view.close()
        finally:
            shared.unlink()
            shared.close()

    def test_empty_dataset(self):
        shared = SharedPacketArrays.create(PacketArrays.from_flows([]))
        try:
            view = SharedPacketArrays.attach(shared.layout)
            assert view.arrays.n_flows == 0 and view.arrays.n_packets == 0
            view.close()
        finally:
            shared.unlink()
            shared.close()


class TestLifetime:
    def test_segment_named_and_removed_on_unlink(self, soa):
        shared = SharedPacketArrays.create(soa)
        name = shared.layout.segment
        assert name.startswith(SEGMENT_PREFIX)
        assert _segment_exists(name)
        shared.unlink()
        shared.close()
        assert not _segment_exists(name)

    def test_close_and_unlink_are_idempotent(self, soa):
        shared = SharedPacketArrays.create(soa)
        shared.unlink()
        shared.unlink()
        shared.close()
        shared.close()
        assert shared.closed
        with pytest.raises(RuntimeError, match="closed"):
            shared.arrays

    def test_unlink_after_close_still_removes_the_name(self, soa):
        # Reverse order: the mapping is gone but the name must still be
        # reclaimable (the crash-cleanup path can hit this ordering).
        shared = SharedPacketArrays.create(soa)
        name = shared.layout.segment
        shared.close()
        assert _segment_exists(name)
        shared.unlink()
        assert not _segment_exists(name)

    def test_attacher_cannot_unlink(self, soa):
        shared = SharedPacketArrays.create(soa)
        try:
            view = SharedPacketArrays.attach(shared.layout)
            view.unlink()  # non-owner: must be a no-op
            assert _segment_exists(shared.layout.segment)
            view.close()
        finally:
            shared.unlink()
            shared.close()

    def test_context_manager_owner_unlinks(self, soa):
        with SharedPacketArrays.create(soa) as shared:
            name = shared.layout.segment
            assert _segment_exists(name)
        assert not _segment_exists(name)


class TestCapacityPreflight:
    def test_oversized_segment_raises_clear_error(self, soa, monkeypatch):
        from repro.datasets import shm as shm_module

        monkeypatch.setattr(shm_module, "_shm_bytes_available", lambda: 1024)
        with pytest.raises(shm_module.SharedMemoryCapacityError) as excinfo:
            SharedPacketArrays.create(soa)
        assert excinfo.value.available == 1024
        assert excinfo.value.requested > 1024
        assert "/dev/shm" in str(excinfo.value)
        # Subclasses MemoryError so generic OOM handling still applies.
        assert isinstance(excinfo.value, MemoryError)

    def test_unknown_capacity_skips_preflight(self, soa, monkeypatch):
        from repro.datasets import shm as shm_module

        monkeypatch.setattr(shm_module, "_shm_bytes_available", lambda: None)
        with SharedPacketArrays.create(soa) as shared:
            assert shared.arrays.n_packets == soa.n_packets

    def test_fitting_segment_passes_preflight(self, soa):
        with SharedPacketArrays.create(soa) as shared:
            assert shared.arrays.n_packets == soa.n_packets


class TestSharedArrayBundle:
    """The generic bundle used by the parallel DSE pool."""

    @pytest.fixture()
    def payload(self) -> dict:
        rng = np.random.default_rng(9)
        return {
            "features": rng.normal(size=(13, 4)).astype(np.float32),
            "labels": rng.integers(0, 3, size=13).astype(np.int64),
            "indices": np.arange(7, dtype=np.int32),
            "empty": np.empty((0, 5), dtype=np.float64),
        }

    def test_roundtrip_is_exact(self, payload):
        from repro.datasets.shm import SharedArrayBundle

        with SharedArrayBundle.create(payload) as shared:
            view = SharedArrayBundle.attach(shared.layout)
            try:
                assert set(view.arrays) == set(payload)
                for name, array in payload.items():
                    got = view.arrays[name]
                    assert got.dtype == array.dtype
                    assert got.shape == array.shape
                    np.testing.assert_array_equal(got, array)
            finally:
                view.close()

    def test_views_are_zero_copy(self, payload):
        from repro.datasets.shm import SharedArrayBundle

        with SharedArrayBundle.create(payload) as shared:
            view = SharedArrayBundle.attach(shared.layout)
            try:
                view.arrays["labels"][0] = 77
                assert shared.arrays["labels"][0] == 77
            finally:
                view.close()

    def test_prefix_names_the_segment(self, payload):
        from repro.datasets.shm import SharedArrayBundle

        with SharedArrayBundle.create(payload, prefix="splidt-dse") as shared:
            assert shared.layout.segment.startswith("splidt-dse-")
            assert _segment_exists(shared.layout.segment)
        assert not _segment_exists(shared.layout.segment)

    def test_attacher_cannot_unlink_and_close_is_idempotent(self, payload):
        from repro.datasets.shm import SharedArrayBundle

        shared = SharedArrayBundle.create(payload)
        try:
            view = SharedArrayBundle.attach(shared.layout)
            view.unlink()  # non-owner: must be a no-op
            assert _segment_exists(shared.layout.segment)
            view.close()
            view.close()
            assert view.closed
            with pytest.raises(RuntimeError, match="closed"):
                view.arrays
        finally:
            shared.unlink()
            shared.unlink()
            shared.close()
