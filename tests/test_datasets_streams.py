"""Chunked packet iteration (`repro.datasets.streams`, `PacketArrays.iter_chunks`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.flows import PacketArrays
from repro.datasets.streams import PacketChunk, iter_packet_chunks


class TestIterChunks:
    def test_chunks_partition_interleave_order(self, small_dataset):
        soa = small_dataset.packet_arrays()
        pieces = list(soa.iter_chunks(97))
        assert np.array_equal(np.concatenate(pieces), soa.interleave_order)
        assert all(len(piece) <= 97 for piece in pieces)
        assert sum(len(piece) for piece in pieces) == soa.n_packets

    def test_none_yields_whole_stream(self, small_dataset):
        soa = small_dataset.packet_arrays()
        pieces = list(soa.iter_chunks(None))
        assert len(pieces) == 1
        assert np.array_equal(pieces[0], soa.interleave_order)

    def test_empty_source_yields_one_empty_chunk(self):
        soa = PacketArrays.from_flows([])
        pieces = list(soa.iter_chunks(8))
        assert len(pieces) == 1 and pieces[0].size == 0


class TestIterPacketChunks:
    def test_accepts_dataset_and_flow_list(self, small_dataset):
        from_dataset = list(iter_packet_chunks(small_dataset, 256))
        from_flows = list(iter_packet_chunks(small_dataset.flows, 256))
        assert len(from_dataset) == len(from_flows)
        for a, b in zip(from_dataset, from_flows):
            assert np.array_equal(a.positions, b.positions)

    def test_chunks_share_one_source(self, small_dataset):
        chunks = list(iter_packet_chunks(small_dataset, 500))
        assert len(chunks) > 1
        assert all(chunk.soa is chunks[0].soa for chunk in chunks)
        assert all(chunk.flows is chunks[0].flows for chunk in chunks)

    def test_chunk_timestamps_are_globally_ordered(self, small_dataset):
        previous = float("-inf")
        for chunk in iter_packet_chunks(small_dataset, 73):
            timestamps = chunk.timestamps()
            assert np.all(np.diff(timestamps) >= 0)
            if timestamps.size:
                assert timestamps[0] >= previous
                previous = float(timestamps[-1])

    def test_reuses_provided_soa(self, small_dataset):
        soa = small_dataset.packet_arrays()
        chunk = next(iter_packet_chunks(small_dataset.flows, None, soa=soa))
        assert chunk.soa is soa
        assert chunk.n_packets == soa.n_packets

    def test_rejects_bad_chunk_size(self, small_dataset):
        with pytest.raises(ValueError, match="chunk_size"):
            next(iter_packet_chunks(small_dataset, 0))

    def test_packet_chunk_helpers(self, small_dataset):
        chunk = next(iter_packet_chunks(small_dataset, 11))
        assert isinstance(chunk, PacketChunk)
        assert chunk.n_packets == 11
        assert chunk.timestamps().shape == (11,)
