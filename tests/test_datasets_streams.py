"""Chunked packet iteration (`repro.datasets.streams`, `PacketArrays.iter_chunks`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.flows import FiveTuple, PacketArrays
from repro.datasets.streams import (
    LazyFlowList,
    PacketChunk,
    StreamedPacketWriter,
    iter_packet_chunks,
)


class TestIterChunks:
    def test_chunks_partition_interleave_order(self, small_dataset):
        soa = small_dataset.packet_arrays()
        pieces = list(soa.iter_chunks(97))
        assert np.array_equal(np.concatenate(pieces), soa.interleave_order)
        assert all(len(piece) <= 97 for piece in pieces)
        assert sum(len(piece) for piece in pieces) == soa.n_packets

    def test_none_yields_whole_stream(self, small_dataset):
        soa = small_dataset.packet_arrays()
        pieces = list(soa.iter_chunks(None))
        assert len(pieces) == 1
        assert np.array_equal(pieces[0], soa.interleave_order)

    def test_empty_source_yields_one_empty_chunk(self):
        soa = PacketArrays.from_flows([])
        pieces = list(soa.iter_chunks(8))
        assert len(pieces) == 1 and pieces[0].size == 0


class TestIterPacketChunks:
    def test_accepts_dataset_and_flow_list(self, small_dataset):
        from_dataset = list(iter_packet_chunks(small_dataset, 256))
        from_flows = list(iter_packet_chunks(small_dataset.flows, 256))
        assert len(from_dataset) == len(from_flows)
        for a, b in zip(from_dataset, from_flows):
            assert np.array_equal(a.positions, b.positions)

    def test_chunks_share_one_source(self, small_dataset):
        chunks = list(iter_packet_chunks(small_dataset, 500))
        assert len(chunks) > 1
        assert all(chunk.soa is chunks[0].soa for chunk in chunks)
        assert all(chunk.flows is chunks[0].flows for chunk in chunks)

    def test_chunk_timestamps_are_globally_ordered(self, small_dataset):
        previous = float("-inf")
        for chunk in iter_packet_chunks(small_dataset, 73):
            timestamps = chunk.timestamps()
            assert np.all(np.diff(timestamps) >= 0)
            if timestamps.size:
                assert timestamps[0] >= previous
                previous = float(timestamps[-1])

    def test_reuses_provided_soa(self, small_dataset):
        soa = small_dataset.packet_arrays()
        chunk = next(iter_packet_chunks(small_dataset.flows, None, soa=soa))
        assert chunk.soa is soa
        assert chunk.n_packets == soa.n_packets

    def test_rejects_bad_chunk_size(self, small_dataset):
        with pytest.raises(ValueError, match="chunk_size"):
            next(iter_packet_chunks(small_dataset, 0))

    def test_packet_chunk_helpers(self, small_dataset):
        chunk = next(iter_packet_chunks(small_dataset, 11))
        assert isinstance(chunk, PacketChunk)
        assert chunk.n_packets == 11
        assert chunk.timestamps().shape == (11,)


@pytest.fixture(scope="module")
def streamed_source(small_dataset):
    """The small dataset spilled through a StreamedPacketWriter."""
    writer = StreamedPacketWriter()
    for flow in small_dataset.flows:
        writer.add_flow(
            flow.five_tuple,
            flow.label,
            timestamps=[p.timestamp for p in flow.packets],
            sizes=[p.size for p in flow.packets],
            flags=[p.flags for p in flow.packets],
            directions=[p.direction for p in flow.packets],
            payloads=[p.payload for p in flow.packets],
            flow_id=flow.flow_id,
        )
    source = writer.finish(name="streamed-d3", class_names=small_dataset.class_names)
    yield source
    source.close()


_ALL_COLUMNS = (
    "timestamps", "sizes", "flags", "directions", "payloads", "packet_flow",
    "flow_starts", "flow_ids", "labels", "n_packets_per_flow",
    "src_ports", "dst_ports", "protocols",
    "first_sizes", "first_timestamps", "interleave_order",
)


class TestStreamedPacketWriter:
    def test_columns_bit_identical_to_from_flows(self, small_dataset, streamed_source):
        reference = PacketArrays.from_flows(small_dataset.flows)
        for column in _ALL_COLUMNS:
            got = np.asarray(getattr(streamed_source.soa, column))
            want = np.asarray(getattr(reference, column))
            assert np.array_equal(got, want), column

    def test_lazy_flows_round_trip(self, small_dataset, streamed_source):
        assert len(streamed_source.flows) == small_dataset.n_flows
        for index in (0, 17, small_dataset.n_flows - 1):
            lazy, real = streamed_source.flows[index], small_dataset.flows[index]
            assert lazy.five_tuple == real.five_tuple
            assert lazy.label == real.label
            assert lazy.flow_id == real.flow_id
            assert lazy.class_name == real.class_name
            assert lazy.n_packets == real.n_packets
            # duration exercises packets[-1] (negative indexing)
            assert lazy.duration == real.duration
            assert lazy.packets[0].size == real.packets[0].size

    def test_lazy_flows_negative_and_out_of_range(self, streamed_source):
        n = len(streamed_source.flows)
        assert streamed_source.flows[-1].flow_id == streamed_source.flows[n - 1].flow_id
        with pytest.raises(IndexError):
            streamed_source.flows[n]
        first = streamed_source.flows[0]
        with pytest.raises(IndexError):
            first.packets[first.n_packets]

    def test_iter_packet_chunks_does_not_materialise(self, streamed_source):
        chunks = list(streamed_source.iter_chunks(97))
        assert all(chunk.flows is streamed_source.flows for chunk in chunks)
        assert isinstance(chunks[0].flows, LazyFlowList)
        total = sum(chunk.n_packets for chunk in chunks)
        assert total == streamed_source.n_packets

    def test_block_append_matches_per_flow_append(self, small_dataset):
        flows = small_dataset.flows[:40]
        per_flow = StreamedPacketWriter()
        for flow in flows:
            per_flow.add_flow(
                flow.five_tuple,
                flow.label,
                timestamps=[p.timestamp for p in flow.packets],
                sizes=[p.size for p in flow.packets],
                flags=[p.flags for p in flow.packets],
                directions=[p.direction for p in flow.packets],
                payloads=[p.payload for p in flow.packets],
                flow_id=flow.flow_id,
            )
        block = StreamedPacketWriter()
        block.add_flow_block(
            src_ips=np.array([f.five_tuple.src_ip for f in flows]),
            dst_ips=np.array([f.five_tuple.dst_ip for f in flows]),
            src_ports=np.array([f.five_tuple.src_port for f in flows]),
            dst_ports=np.array([f.five_tuple.dst_port for f in flows]),
            protocols=np.array([f.five_tuple.protocol for f in flows]),
            labels=np.array([f.label for f in flows]),
            counts=np.array([f.n_packets for f in flows]),
            timestamps=np.array([p.timestamp for f in flows for p in f.packets]),
            sizes=np.array([p.size for f in flows for p in f.packets]),
            flags=np.array([p.flags for f in flows for p in f.packets]),
            directions=np.array([p.direction for f in flows for p in f.packets]),
            payloads=np.array([p.payload for f in flows for p in f.packets]),
            flow_ids=np.array([f.flow_id for f in flows]),
        )
        with per_flow.finish() as a, block.finish() as b:
            for column in _ALL_COLUMNS:
                assert np.array_equal(
                    np.asarray(getattr(a.soa, column)), np.asarray(getattr(b.soa, column))
                ), column

    def test_non_monotonic_flow_ids_still_match_lexsort(self):
        # Two flows sharing one timestamp but appended in descending-id order
        # force the full lexsort path; the interleave must order the tie by
        # flow id, not append order.
        writer = StreamedPacketWriter()
        writer.add_flow(
            FiveTuple(1, 2, 3, 4, 6), 0, timestamps=[5.0], sizes=[100], flow_id=9
        )
        writer.add_flow(
            FiveTuple(5, 6, 7, 8, 6), 1, timestamps=[5.0], sizes=[200], flow_id=2
        )
        with writer.finish() as source:
            assert list(source.soa.interleave_order) == [1, 0]

    def test_empty_writer_finishes(self):
        with StreamedPacketWriter().finish() as source:
            assert source.n_flows == 0 and source.n_packets == 0
            chunks = list(source.iter_chunks(8))
            assert len(chunks) == 1 and chunks[0].n_packets == 0

    def test_writer_rejects_use_after_finish(self):
        writer = StreamedPacketWriter()
        source = writer.finish()
        try:
            with pytest.raises(RuntimeError, match="finished"):
                writer.add_flow(FiveTuple(1, 2, 3, 4, 6), 0, timestamps=[], sizes=[])
        finally:
            source.close()

    def test_close_removes_backing_directory(self):
        writer = StreamedPacketWriter()
        writer.add_flow(FiveTuple(1, 2, 3, 4, 6), 0, timestamps=[0.0], sizes=[64])
        source = writer.finish()
        directory = source.directory
        assert directory.exists() and source.spilled_bytes() > 0
        source.close()
        assert not directory.exists()
        source.close()  # idempotent

    def test_materialised_estimate_dominates_spilled(self, streamed_source):
        # The object-form estimate must exceed the raw spilled bytes by a
        # healthy margin — that gap is the whole point of streaming.
        assert streamed_source.materialised_bytes_estimate() > streamed_source.spilled_bytes()


class TestStreamedReplayParity:
    def test_fused_replay_matches_materialised(
        self, small_dataset, streamed_source, splidt_model, splidt_rules
    ):
        from repro.dataplane import SpliDTDataPlane
        from repro.dataplane import vectorized as vz

        def run(flows, soa):
            program = SpliDTDataPlane(splidt_model, splidt_rules, flow_slots=64)
            vz.replay_arrays(program, flows, soa=soa)
            return dict(program.verdicts), program.recirculation_stats()

        want = run(small_dataset.flows, small_dataset.packet_arrays())
        got = run(streamed_source.flows, streamed_source.soa)
        assert got == want

    def test_serve_engine_accepts_streamed_chunks(
        self, streamed_source, splidt_model, splidt_rules
    ):
        from repro.dataplane import SpliDTDataPlane
        from repro.serve import MicroBatchEngine

        program = SpliDTDataPlane(splidt_model, splidt_rules, flow_slots=64)
        engine = MicroBatchEngine(program).open()
        for chunk in streamed_source.iter_chunks(256):
            engine.ingest(chunk)
        result = engine.close()
        assert engine.verdicts()  # flows decided through the streamed path
        assert len(result.labels) == streamed_source.n_flows
