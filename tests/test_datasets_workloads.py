"""Unit tests for the datacenter workload models and recirculation estimates."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.workloads import (
    CONTROL_PACKET_BYTES,
    RECIRCULATION_CAPACITY_BPS,
    WORKLOADS,
    estimate_recirculation,
    get_workload,
    sample_flow_durations,
    sample_flow_sizes,
)


class TestWorkloadProfiles:
    def test_both_environments_defined(self):
        assert set(WORKLOADS) == {"WS", "HD"}

    def test_lookup(self):
        assert get_workload("WS").name == "Webserver"
        assert get_workload("HD").name == "Hadoop"

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError):
            get_workload("XX")

    def test_hadoop_flows_shorter_than_webserver(self):
        assert WORKLOADS["HD"].mean_flow_duration < WORKLOADS["WS"].mean_flow_duration
        assert WORKLOADS["HD"].mean_flow_packets < WORKLOADS["WS"].mean_flow_packets


class TestSampling:
    def test_flow_sizes_positive(self):
        rng = np.random.default_rng(0)
        sizes = sample_flow_sizes(WORKLOADS["WS"], 1000, rng)
        assert sizes.shape == (1000,)
        assert np.all(sizes >= 1)

    def test_flow_durations_positive(self):
        rng = np.random.default_rng(0)
        durations = sample_flow_durations(WORKLOADS["HD"], 1000, rng)
        assert np.all(durations > 0)

    def test_webserver_heavier_than_hadoop(self):
        rng = np.random.default_rng(1)
        ws = sample_flow_sizes(WORKLOADS["WS"], 5000, rng)
        hd = sample_flow_sizes(WORKLOADS["HD"], 5000, rng)
        assert np.median(ws) > np.median(hd)


class TestRecirculationEstimate:
    def test_zero_partitions_no_recirculation(self):
        estimate = estimate_recirculation(WORKLOADS["WS"], concurrent_flows=100_000, n_partitions=1)
        assert estimate.mean_bps == 0.0
        assert estimate.peak_bps == 0.0

    def test_zero_flows_no_recirculation(self):
        estimate = estimate_recirculation(WORKLOADS["HD"], concurrent_flows=0, n_partitions=4)
        assert estimate.mean_bps == 0.0

    def test_bandwidth_grows_with_partitions(self):
        few = estimate_recirculation(WORKLOADS["WS"], concurrent_flows=500_000, n_partitions=2)
        many = estimate_recirculation(WORKLOADS["WS"], concurrent_flows=500_000, n_partitions=6)
        assert many.mean_bps > few.mean_bps

    def test_bandwidth_grows_with_flows(self):
        small = estimate_recirculation(WORKLOADS["HD"], concurrent_flows=100_000, n_partitions=4)
        large = estimate_recirculation(WORKLOADS["HD"], concurrent_flows=1_000_000, n_partitions=4)
        assert large.mean_bps > small.mean_bps

    def test_hadoop_recirculates_more_than_webserver(self):
        # Shorter flows turn over faster, so HD issues more control packets
        # per second — matching the paper's Table 5 ordering.
        ws = estimate_recirculation(WORKLOADS["WS"], concurrent_flows=1_000_000, n_partitions=4)
        hd = estimate_recirculation(WORKLOADS["HD"], concurrent_flows=1_000_000, n_partitions=4)
        assert hd.mean_bps > ws.mean_bps

    def test_overhead_well_below_capacity(self):
        # The paper's headline claim: worst-case recirculation stays a tiny
        # fraction of the 100 Gbps path.
        estimate = estimate_recirculation(WORKLOADS["HD"], concurrent_flows=1_000_000, n_partitions=7)
        assert estimate.peak_bps < 0.01 * RECIRCULATION_CAPACITY_BPS

    def test_mbps_helpers(self):
        estimate = estimate_recirculation(WORKLOADS["WS"], concurrent_flows=500_000, n_partitions=4)
        assert estimate.mean_mbps == pytest.approx(estimate.mean_bps / 1e6)
        assert estimate.peak_mbps >= estimate.mean_mbps

    def test_control_packet_rate_consistency(self):
        estimate = estimate_recirculation(WORKLOADS["WS"], concurrent_flows=200_000, n_partitions=3)
        expected_bps = estimate.control_packets_per_second * CONTROL_PACKET_BYTES * 8
        assert estimate.mean_bps == pytest.approx(expected_bps)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            estimate_recirculation(WORKLOADS["WS"], concurrent_flows=-1, n_partitions=2)
        with pytest.raises(ValueError):
            estimate_recirculation(WORKLOADS["WS"], concurrent_flows=10, n_partitions=0)
