"""Docs hygiene inside tier-1: links resolve, smoke markers exist.

The heavyweight half — actually executing the marked snippets — runs in
CI's docs job (``tools/check_docs.py --snippets``); here we keep the cheap
invariants in the default suite so a broken link or a silently deleted
docs-smoke marker fails close to the edit that caused it.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]


def _load_check_docs():
    spec = importlib.util.spec_from_file_location(
        "check_docs", REPO_ROOT / "tools" / "check_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("check_docs", module)
    spec.loader.exec_module(module)
    return module


def test_relative_links_resolve():
    check_docs = _load_check_docs()
    assert check_docs.check_links() == []


def test_docs_index_covers_every_doc():
    index = (REPO_ROOT / "docs" / "README.md").read_text()
    for doc in sorted((REPO_ROOT / "docs").glob("*.md")):
        if doc.name == "README.md":
            continue
        assert doc.name in index, f"docs/README.md does not link {doc.name}"


def test_smoke_snippets_present():
    check_docs = _load_check_docs()
    for entry in check_docs.SNIPPET_FILES:
        snippets = check_docs._smoke_snippets(REPO_ROOT / entry)
        assert snippets, f"{entry} lost its {check_docs.SMOKE_MARKER} snippets"
        assert all(commands for _language, commands in snippets)


def test_readme_links_docs_index():
    assert "docs/README.md" in (REPO_ROOT / "README.md").read_text()
