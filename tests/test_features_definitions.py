"""Unit tests for the feature catalogue."""

from __future__ import annotations

from repro.features.definitions import (
    FEATURES,
    FEATURES_BY_NAME,
    N_FEATURES,
    STATEFUL_INDICES,
    STATELESS_INDICES,
    dependency_depth,
    feature_names,
    max_dependency_depth,
)


class TestCatalogue:
    def test_catalogue_size_matches_paper_n(self):
        # The paper quotes N = 41 features for dataset D1.
        assert N_FEATURES == 41

    def test_indices_are_contiguous(self):
        assert [f.index for f in FEATURES] == list(range(N_FEATURES))

    def test_names_are_unique(self):
        names = feature_names()
        assert len(names) == len(set(names))

    def test_lookup_by_name(self):
        assert FEATURES_BY_NAME["pkt_count"].stateful is True
        assert FEATURES_BY_NAME["src_port"].stateful is False

    def test_stateful_and_stateless_partition_catalogue(self):
        assert set(STATEFUL_INDICES) | set(STATELESS_INDICES) == set(range(N_FEATURES))
        assert set(STATEFUL_INDICES).isdisjoint(STATELESS_INDICES)

    def test_most_features_are_stateful(self):
        assert len(STATEFUL_INDICES) > len(STATELESS_INDICES)

    def test_stateless_features_have_no_dependencies(self):
        for index in STATELESS_INDICES:
            assert FEATURES[index].dependency_depth == 0

    def test_dependency_depth_within_paper_bound(self):
        # The paper observed chains of at most 3 stages.
        assert max_dependency_depth() <= 3

    def test_dependency_depth_of_subset(self):
        counts = [FEATURES_BY_NAME["pkt_count"].index, FEATURES_BY_NAME["syn_count"].index]
        assert dependency_depth(counts) == 0
        with_iat = counts + [FEATURES_BY_NAME["std_iat"].index]
        assert dependency_depth(with_iat) == 3

    def test_dependency_depth_empty(self):
        assert dependency_depth([]) == 0

    def test_bit_widths_positive(self):
        assert all(f.bit_width > 0 for f in FEATURES)

    def test_operators_are_known(self):
        known = {"count", "sum", "max", "min", "mean", "last", "rate", "stateless"}
        assert all(f.operator in known for f in FEATURES)
