"""Unit tests for the window-aware flow feature engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.flows import FiveTuple, Flow, Packet, TCP_FLAGS
from repro.features.definitions import FEATURES_BY_NAME, N_FEATURES
from repro.features.flowmeter import FlowMeter, quantize_features


def _index(name: str) -> int:
    return FEATURES_BY_NAME[name].index


def _make_flow(n_packets: int = 12, size: int = 100, iat: float = 0.1) -> Flow:
    packets = [
        Packet(
            timestamp=i * iat,
            size=size,
            flags=TCP_FLAGS["SYN"] if i == 0 else TCP_FLAGS["ACK"],
            direction=1 if i % 2 == 0 else -1,
            payload=size // 2,
        )
        for i in range(n_packets)
    ]
    five_tuple = FiveTuple(1, 2, 1234, 443, 6)
    return Flow(five_tuple=five_tuple, packets=packets, label=0)


class TestWholeFlowExtraction:
    def setup_method(self):
        self.meter = FlowMeter()
        self.flow = _make_flow()

    def test_vector_length(self):
        vector = self.meter.extract_flow(self.flow)
        assert vector.shape == (N_FEATURES,)

    def test_packet_count(self):
        vector = self.meter.extract_flow(self.flow)
        assert vector[_index("pkt_count")] == 12

    def test_byte_count(self):
        vector = self.meter.extract_flow(self.flow)
        assert vector[_index("byte_count")] == 1200

    def test_mean_min_max_pkt_len(self):
        vector = self.meter.extract_flow(self.flow)
        assert vector[_index("mean_pkt_len")] == 100
        assert vector[_index("min_pkt_len")] == 100
        assert vector[_index("max_pkt_len")] == 100
        assert vector[_index("std_pkt_len")] == 0

    def test_iat_statistics(self):
        vector = self.meter.extract_flow(self.flow)
        assert vector[_index("mean_iat")] == pytest.approx(0.1)
        assert vector[_index("min_iat")] == pytest.approx(0.1)
        assert vector[_index("max_iat")] == pytest.approx(0.1)
        assert vector[_index("std_iat")] == pytest.approx(0.0, abs=1e-9)

    def test_duration(self):
        vector = self.meter.extract_flow(self.flow)
        assert vector[_index("duration")] == pytest.approx(1.1)

    def test_flag_counts(self):
        vector = self.meter.extract_flow(self.flow)
        assert vector[_index("syn_count")] == 1
        assert vector[_index("ack_count")] == 11
        assert vector[_index("fin_count")] == 0

    def test_direction_counts(self):
        vector = self.meter.extract_flow(self.flow)
        assert vector[_index("fwd_pkt_count")] == 6
        assert vector[_index("bwd_pkt_count")] == 6
        assert vector[_index("fwd_byte_count")] == 600

    def test_stateless_fields(self):
        vector = self.meter.extract_flow(self.flow)
        assert vector[_index("src_port")] == 1234
        assert vector[_index("dst_port")] == 443
        assert vector[_index("protocol")] == 6
        assert vector[_index("pkt_len_first")] == 100

    def test_small_and_large_packet_counts(self):
        flow = _make_flow(size=50)
        vector = self.meter.extract_flow(flow)
        assert vector[_index("small_pkt_count")] == flow.n_packets
        assert vector[_index("large_pkt_count")] == 0

    def test_rates(self):
        vector = self.meter.extract_flow(self.flow)
        assert vector[_index("pkt_rate")] == pytest.approx(12 / 1.1)
        assert vector[_index("byte_rate")] == pytest.approx(1200 / 1.1)


class TestWindowExtraction:
    def setup_method(self):
        self.meter = FlowMeter()

    def test_window_matrix_shape(self):
        matrix = self.meter.extract_windows(_make_flow(12), 3)
        assert matrix.shape == (3, N_FEATURES)

    def test_window_packet_counts_sum_to_flow(self):
        flow = _make_flow(13)
        matrix = self.meter.extract_windows(flow, 4)
        assert matrix[:, _index("pkt_count")].sum() == 13

    def test_window_state_reset(self):
        # Each window's byte count reflects only that window's packets.
        flow = _make_flow(12, size=100)
        matrix = self.meter.extract_windows(flow, 3)
        np.testing.assert_allclose(matrix[:, _index("byte_count")], 400)

    def test_empty_window_is_zero_stateful(self):
        flow = _make_flow(2)
        matrix = self.meter.extract_windows(flow, 4)
        assert matrix[3, _index("pkt_count")] == 0
        assert matrix[3, _index("byte_count")] == 0

    def test_single_window_equals_whole_flow(self):
        flow = _make_flow(10)
        whole = self.meter.extract_flow(flow)
        windowed = self.meter.extract_windows(flow, 1)[0]
        np.testing.assert_allclose(whole, windowed)

    def test_windows_capture_phase_differences(self):
        # First half small packets, second half large packets.
        packets = [Packet(timestamp=i * 0.1, size=60) for i in range(6)]
        packets += [Packet(timestamp=0.6 + i * 0.1, size=1400) for i in range(6)]
        flow = Flow(FiveTuple(1, 2, 3, 4, 6), packets, label=0)
        matrix = self.meter.extract_windows(flow, 2)
        assert matrix[0, _index("mean_pkt_len")] == pytest.approx(60)
        assert matrix[1, _index("mean_pkt_len")] == pytest.approx(1400)


class TestPerPacketExtraction:
    def test_only_stateless_features_set(self):
        meter = FlowMeter()
        flow = _make_flow()
        vector = meter.extract_per_packet(flow.packets[0], flow)
        assert vector[_index("dst_port")] == 443
        assert vector[_index("pkt_count")] == 0
        assert vector[_index("byte_count")] == 0


class TestQuantizeFeatures:
    def test_32_bit_is_identity(self):
        matrix = np.array([[1.5, 2.5], [3.0, 4.0]])
        np.testing.assert_allclose(quantize_features(matrix, 32), matrix)

    def test_values_bounded_by_levels(self):
        matrix = np.random.default_rng(0).uniform(0, 1000, size=(20, 3))
        quantized = quantize_features(matrix, 8)
        assert quantized.max() <= 255
        assert quantized.min() >= 0

    def test_monotone_in_input(self):
        matrix = np.array([[0.0], [10.0], [100.0], [1000.0]])
        quantized = quantize_features(matrix, 8)
        assert np.all(np.diff(quantized[:, 0]) >= 0)

    def test_invalid_bit_width(self):
        with pytest.raises(ValueError):
            quantize_features(np.zeros((2, 2)), 0)

    def test_lower_precision_coarser(self):
        matrix = np.linspace(0, 1000, 100).reshape(-1, 1)
        q8 = quantize_features(matrix, 8)
        q16 = quantize_features(matrix, 16)
        assert len(np.unique(q8)) <= len(np.unique(q16))
