"""Tests that the per-packet register operators agree with the offline meter."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.flows import FiveTuple, Flow, Packet, TCP_FLAGS
from repro.features.definitions import FEATURES, FEATURES_BY_NAME
from repro.features.flowmeter import FlowMeter
from repro.features.stateful import make_operator, make_operator_bank


def _make_flow(seed: int = 0, n_packets: int = 30) -> Flow:
    rng = np.random.default_rng(seed)
    packets = []
    timestamp = 0.0
    for i in range(n_packets):
        timestamp += float(rng.exponential(0.05))
        packets.append(
            Packet(
                timestamp=timestamp,
                size=int(rng.integers(40, 1500)),
                flags=(TCP_FLAGS["SYN"] if i == 0 else 0)
                | (TCP_FLAGS["ACK"] if i > 0 else 0)
                | (TCP_FLAGS["PSH"] if rng.random() < 0.3 else 0),
                direction=1 if rng.random() < 0.6 else -1,
                payload=int(rng.integers(0, 1000)),
            )
        )
    return Flow(FiveTuple(1, 2, 3, 4, 6), packets, label=0)


#: Features whose operator should match the offline flow meter exactly.
EXACT_FEATURES = [
    "pkt_count", "byte_count", "min_pkt_len", "max_pkt_len", "first_pkt_len",
    "last_pkt_len", "syn_count", "ack_count", "fin_count", "psh_count",
    "rst_count", "urg_count", "fwd_pkt_count", "bwd_pkt_count",
    "fwd_byte_count", "bwd_byte_count", "small_pkt_count", "large_pkt_count",
    "payload_sum", "duration", "mean_pkt_len", "mean_iat", "min_iat",
    "max_iat", "max_fwd_pkt_len", "max_bwd_pkt_len", "mean_fwd_pkt_len",
    "mean_bwd_pkt_len", "mean_payload", "idle_max", "std_pkt_len", "std_iat",
    "fwd_bwd_pkt_ratio", "burst_count", "max_burst_len", "pkt_rate", "byte_rate",
]


class TestOperatorsMatchFlowMeter:
    @pytest.mark.parametrize("feature_name", EXACT_FEATURES)
    def test_operator_equals_offline_value(self, feature_name):
        flow = _make_flow(seed=3)
        operator = make_operator(feature_name)
        for packet in flow.packets:
            operator.update(packet)
        offline = FlowMeter().extract_flow(flow)[FEATURES_BY_NAME[feature_name].index]
        assert operator.value == pytest.approx(offline, rel=1e-6, abs=1e-9)

    @pytest.mark.parametrize("seed", [0, 1, 2, 7])
    def test_counters_on_random_flows(self, seed):
        flow = _make_flow(seed=seed)
        for name in ("pkt_count", "byte_count", "syn_count", "fwd_pkt_count"):
            operator = make_operator(name)
            for packet in flow.packets:
                operator.update(packet)
            offline = FlowMeter().extract_flow(flow)[FEATURES_BY_NAME[name].index]
            assert operator.value == pytest.approx(offline)


class TestOperatorLifecycle:
    def test_reset_clears_state(self):
        flow = _make_flow()
        operator = make_operator("byte_count")
        for packet in flow.packets:
            operator.update(packet)
        assert operator.value > 0
        operator.reset()
        assert operator.value == 0.0

    def test_reset_then_reuse_matches_fresh(self):
        flow = _make_flow(seed=5)
        reused = make_operator("max_iat")
        for packet in flow.packets[:10]:
            reused.update(packet)
        reused.reset()
        fresh = make_operator("max_iat")
        for packet in flow.packets[10:]:
            reused.update(packet)
            fresh.update(packet)
        assert reused.value == pytest.approx(fresh.value)

    def test_stateless_feature_rejected(self):
        with pytest.raises(ValueError):
            make_operator("src_port")

    def test_operator_bank_contains_all_requested(self):
        names = ["pkt_count", "mean_iat", "syn_count"]
        bank = make_operator_bank(names)
        assert set(bank) == set(names)

    def test_every_stateful_feature_has_an_operator(self):
        for definition in FEATURES:
            if definition.stateful:
                operator = make_operator(definition.name)
                operator.update(Packet(timestamp=0.0, size=100))
                assert operator.value >= 0.0
