"""Unit tests for window segmentation."""

from __future__ import annotations

import pytest

from repro.datasets.flows import Packet
from repro.features.window import split_packets, window_boundaries, window_of_packet


def _packets(n: int) -> list[Packet]:
    return [Packet(timestamp=i * 0.1, size=100 + i) for i in range(n)]


class TestWindowBoundaries:
    def test_even_division(self):
        assert window_boundaries(12, 3) == [4, 8, 12]

    def test_remainder_goes_to_early_windows(self):
        assert window_boundaries(10, 3) == [4, 7, 10]

    def test_single_window(self):
        assert window_boundaries(7, 1) == [7]

    def test_more_windows_than_packets(self):
        boundaries = window_boundaries(2, 4)
        assert boundaries[-1] == 2
        assert len(boundaries) == 4

    def test_zero_packets(self):
        assert window_boundaries(0, 3) == [0, 0, 0]

    def test_last_boundary_equals_packet_count(self):
        for n in (1, 5, 17, 100):
            for windows in (1, 2, 3, 7):
                assert window_boundaries(n, windows)[-1] == n

    def test_boundaries_non_decreasing(self):
        boundaries = window_boundaries(23, 5)
        assert all(a <= b for a, b in zip(boundaries, boundaries[1:]))

    def test_invalid_windows(self):
        with pytest.raises(ValueError):
            window_boundaries(10, 0)

    def test_negative_packets(self):
        with pytest.raises(ValueError):
            window_boundaries(-1, 2)


class TestSplitPackets:
    def test_windows_cover_all_packets(self):
        packets = _packets(13)
        windows = split_packets(packets, 4)
        assert sum(len(w) for w in windows) == 13
        flattened = [p for w in windows for p in w]
        assert flattened == packets

    def test_window_count(self):
        windows = split_packets(_packets(9), 3)
        assert len(windows) == 3

    def test_uniformity(self):
        windows = split_packets(_packets(12), 3)
        assert [len(w) for w in windows] == [4, 4, 4]

    def test_empty_flow(self):
        windows = split_packets([], 3)
        assert [len(w) for w in windows] == [0, 0, 0]

    def test_windows_preserve_order(self):
        windows = split_packets(_packets(10), 2)
        assert windows[0][-1].timestamp < windows[1][0].timestamp


class TestWindowOfPacket:
    def test_first_packet_in_first_window(self):
        assert window_of_packet(0, 12, 3) == 0

    def test_last_packet_in_last_window(self):
        assert window_of_packet(11, 12, 3) == 2

    def test_matches_boundaries(self):
        n, windows = 10, 3
        boundaries = window_boundaries(n, windows)
        for index in range(n):
            window = window_of_packet(index, n, windows)
            start = 0 if window == 0 else boundaries[window - 1]
            assert start <= index < boundaries[window]

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            window_of_packet(10, 10, 2)
