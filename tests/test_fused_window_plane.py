"""Hand-computed regression tests for the fused window plane.

The parity-fuzz suite (:mod:`tests.test_parity_fuzz`) checks the batched
engines against the per-packet oracle; these tests pin the *intended*
semantics with expectations computed by hand, so a bug that broke oracle and
batched plane identically would still be caught:

* :func:`repro.dataplane.vectorized._segment_rounds` — the window-segment
  masks every fused round is built from, against hand-expanded boundary
  tables;
* :meth:`~repro.dataplane.splidt_program.SpliDTDataPlane.step_windows` — the
  last-window/early-exit/recirculation decision logic, driven by a scripted
  rule table so each row's classification outcome is chosen by the test.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.range_marking import KIND_EXIT, KIND_NEXT, KIND_NONE
from repro.dataplane import SpliDTDataPlane
from repro.dataplane import vectorized as vz
from repro.features.definitions import N_FEATURES


# ----------------------------------------------------------------------
# _segment_rounds: hand-expanded window boundary tables (P = 3)
# ----------------------------------------------------------------------
class TestSegmentRounds:
    # For count c and P=3 the reference boundary rule yields cumulative
    # boundaries (c//3)*(w+1) + min(w+1, c%3); each round's segment is
    # [previous trigger, max(boundary, pos+1)) clipped to c, valid while
    # packets remain.  Expanded by hand:
    #
    #   c=1: [0,1)   --      --       (windows 1,2 never see a packet)
    #   c=2: [0,1)  [1,2)    --
    #   c=3: [0,1)  [1,2)   [2,3)
    #   c=5: [0,2)  [2,4)   [4,5)
    #   c=7: [0,3)  [3,5)   [5,7)
    EXPECTED = {
        1: [(True, 0, 1), (False, None, None), (False, None, None)],
        2: [(True, 0, 1), (True, 1, 2), (False, None, None)],
        3: [(True, 0, 1), (True, 1, 2), (True, 2, 3)],
        5: [(True, 0, 2), (True, 2, 4), (True, 4, 5)],
        7: [(True, 0, 3), (True, 3, 5), (True, 5, 7)],
    }

    def test_hand_expanded_boundaries(self):
        counts = np.array(sorted(self.EXPECTED), dtype=np.int64)
        rounds = vz._segment_rounds(counts, 3)
        assert len(rounds) == 3
        for w, (valid, start, end) in enumerate(rounds):
            for row, count in enumerate(counts.tolist()):
                want_valid, want_start, want_end = self.EXPECTED[count][w]
                assert bool(valid[row]) is want_valid, (count, w)
                if want_valid:
                    assert (start[row], end[row]) == (want_start, want_end), (count, w)

    def test_segments_tile_each_flow_exactly(self):
        # Valid segments are contiguous, disjoint, and cover [0, count).
        counts = np.arange(1, 40, dtype=np.int64)
        for n_partitions in (1, 2, 3, 4, 7):
            rounds = vz._segment_rounds(counts, n_partitions)
            position = np.zeros(counts.size, dtype=np.int64)
            for valid, start, end in rounds:
                idx = np.flatnonzero(valid)
                assert np.array_equal(start[idx], position[idx])
                assert np.all(end[idx] > start[idx])
                position[idx] = end[idx]
            assert np.array_equal(position, counts)

    def test_short_flow_runs_out_of_windows(self):
        # A flow with fewer packets than partitions exhausts its stream in
        # an early window: the remaining rounds are invalid, which is why
        # such a flow can end undecided (and must replay scalar when its
        # slot has successors).
        rounds = vz._segment_rounds(np.array([2], dtype=np.int64), 5)
        validity = [bool(valid[0]) for valid, _, _ in rounds]
        assert validity == [True, True, False, False, False]


# ----------------------------------------------------------------------
# step_windows: scripted classification outcomes
# ----------------------------------------------------------------------
class _ScriptedRules:
    """Stands in for the compiled rule set: outcomes chosen by the test."""

    def __init__(self, kinds, values):
        self.kinds = np.asarray(kinds, dtype=np.int8)
        self.values = np.asarray(values, dtype=np.int64)

    def classify_batch(self, sid, matrix, lookup=None):
        assert len(matrix) == self.kinds.size
        return self.kinds, self.values


def _step(program, kinds, values, *, window_index, staging=None):
    """Drive one ``step_windows`` round with scripted outcomes."""
    n = len(kinds)
    program.rules = _ScriptedRules(kinds, values)
    flow_ids = np.arange(n, dtype=np.int64)
    slots = np.arange(n, dtype=np.intp)
    sids = np.full(n, program.model.root_sid, dtype=np.int64)
    program.begin_flows(slots)
    advance, out_values = program.step_windows(
        flow_ids=flow_ids,
        slots=slots,
        sids=sids,
        window_index=window_index,
        feature_matrix=np.zeros((n, N_FEATURES)),
        boundary_ts=np.arange(n, dtype=np.float64) + 10.0,
        first_packet_ts=np.arange(n, dtype=np.float64),
        packets_seen=np.full(n, window_index + 1, dtype=np.float64),
        staging=staging,
    )
    return advance, out_values


@pytest.fixture()
def program(splidt_model, splidt_rules):
    return SpliDTDataPlane(splidt_model, splidt_rules, flow_slots=64)


class TestStepWindows:
    def test_last_window_never_advances(self, program):
        # Even a "next subtree" outcome decides at the final window: there
        # is no further window to recirculate into.
        last = program.model.config.n_partitions - 1
        advance, _ = _step(program, [KIND_NEXT, KIND_NEXT], [5, 6], window_index=last)
        assert not advance.any()
        default = program.model.default_label
        assert program.verdicts[0].label == default
        assert program.verdicts[0].early_exit is False
        assert program.verdicts[0].n_recirculations == last
        assert program.pipeline.recirculation.packets_recirculated == 0

    def test_early_exit_before_last_window(self, program):
        advance, _ = _step(program, [KIND_EXIT], [7], window_index=0)
        assert not advance.any()
        verdict = program.verdicts[0]
        assert verdict.label == 7
        assert verdict.early_exit is True
        assert verdict.n_recirculations == 0

    def test_exit_at_last_window_is_not_early(self, program):
        last = program.model.config.n_partitions - 1
        _step(program, [KIND_EXIT], [7], window_index=last)
        verdict = program.verdicts[0]
        assert verdict.label == 7
        assert verdict.early_exit is False

    def test_miss_decides_with_default_label(self, program):
        _step(program, [KIND_NONE], [0], window_index=0)
        verdict = program.verdicts[0]
        assert verdict.label == program.model.default_label
        assert verdict.early_exit is False

    def test_recirculation_while_decided_interleaving(self, program):
        # One batch mixing every outcome: rows 0 and 3 recirculate into
        # subtrees 11/13, row 1 exits early, row 2 misses.  The decided rows
        # must not recirculate, and the advancing rows must not decide.
        kinds = [KIND_NEXT, KIND_EXIT, KIND_NONE, KIND_NEXT]
        values = [11, 9, 0, 13]
        advance, out_values = _step(program, kinds, values, window_index=0)

        assert advance.tolist() == [True, False, False, True]
        assert out_values[advance].tolist() == [11, 13]
        # Verdicts exactly for the decided rows.
        assert sorted(program.verdicts) == [1, 2]
        assert program.verdicts[1].label == 9
        assert program.verdicts[1].early_exit is True
        assert program.verdicts[2].label == program.model.default_label
        # Exactly one control packet per advancing flow.
        assert program.pipeline.recirculation.packets_recirculated == 2
        # The advancing flows' sid registers now hold the next subtree;
        # decided slots keep the root sid written by begin_flows.
        sid_reg = program.pipeline.registers["sid"]
        assert sid_reg.read_many(np.array([0, 3])).tolist() == [11.0, 13.0]
        root = float(program.model.root_sid)
        assert sid_reg.read_many(np.array([1, 2])).tolist() == [root, root]
        # Digest per decided flow, stamped with the boundary timestamp.
        digests = {d.flow_id: d for d in program.controller.digests}
        assert sorted(digests) == [1, 2]
        assert digests[1].timestamp == 11.0

    def test_staging_defers_finalisation(self, program):
        staging = []
        _step(program, [KIND_EXIT, KIND_NONE], [4, 0], window_index=0,
              staging=staging)
        # Nothing materialised yet: the round loop owns finalisation.
        assert program.verdicts == {}
        assert program.controller.digests == []
        assert len(staging) == 1

        program.finalise_staged(staging)
        assert staging == []
        assert sorted(program.verdicts) == [0, 1]
        assert program.verdicts[0].label == 4
        assert [d.flow_id for d in program.controller.digests] == [0, 1]

        # Idempotent on the drained list.
        program.finalise_staged(staging)
        assert len(program.controller.digests) == 2
