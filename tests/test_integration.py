"""End-to-end integration tests: the full paper pipeline at small scale."""

from __future__ import annotations

import numpy as np
import pytest

from repro import baselines, core, dataplane, datasets
from repro.switch.targets import TOFINO1


class TestEndToEndPipeline:
    """Dataset → windows → partitioned training → rules → resources → replay."""

    @pytest.fixture(scope="class")
    def pipeline_artifacts(self):
        dataset = datasets.load_dataset("D2", n_flows=300, seed=21)
        store = datasets.DatasetStore(dataset, random_state=21)
        windowed = store.fetch(3)
        config = core.SpliDTConfig(depth=6, features_per_subtree=3, partition_sizes=(2, 2, 2))
        model = core.train_partitioned_tree(windowed, config, random_state=21)
        matrix = np.vstack([windowed.partition_matrix(p, "train") for p in range(3)])
        rules = core.generate_rules(model, matrix)
        resources = core.estimate_splidt_resources(
            model, rules, target=TOFINO1, workloads=datasets.WORKLOADS
        )
        return dataset, store, windowed, config, model, rules, resources

    def test_model_trains_and_classifies(self, pipeline_artifacts):
        _, _, windowed, _, model, _, _ = pipeline_artifacts
        report = core.evaluate_partitioned_tree(model, windowed)
        assert report.f1_score > 1.0 / windowed.n_classes

    def test_resources_feasible_at_100k(self, pipeline_artifacts):
        *_, resources = pipeline_artifacts
        verdict = core.check_feasibility(resources, n_flows=100_000)
        assert verdict.feasible, verdict.violations

    def test_rules_fit_tofino_tcam(self, pipeline_artifacts):
        *_, rules, resources = pipeline_artifacts[-3:], pipeline_artifacts[-1]
        assert pipeline_artifacts[5].tcam_bits() < TOFINO1.tcam_bits

    def test_dataplane_replay_matches_offline_quality(self, pipeline_artifacts):
        dataset, _, windowed, _, model, rules, _ = pipeline_artifacts
        program = dataplane.SpliDTDataPlane(model, rules, flow_slots=4096)
        result = dataplane.replay_dataset(program, dataset.subset(np.arange(80)))
        offline = core.evaluate_partitioned_tree(model, windowed, split="train")
        assert result.report.f1_score > offline.f1_score - 0.35

    def test_recirculation_stays_within_capacity(self, pipeline_artifacts):
        *_, resources = pipeline_artifacts
        for estimate in resources.recirculation.values():
            assert estimate.fraction_of_capacity < 0.01


class TestSpliDTVersusBaselines:
    """The paper's headline comparison at reduced scale."""

    @pytest.fixture(scope="class")
    def comparison(self):
        dataset = datasets.load_dataset("D3", n_flows=500, seed=5)
        store = datasets.DatasetStore(dataset, random_state=5)
        windowed = store.fetch(3)

        config = core.SpliDTConfig(depth=12, features_per_subtree=4, partition_sizes=(4, 4, 4))
        splidt_model = core.train_partitioned_tree(windowed, config, random_state=5)
        splidt_report = core.evaluate_partitioned_tree(splidt_model, windowed)

        netbeacon = baselines.search_netbeacon(
            windowed, target=TOFINO1, n_flows=100_000, k_range=(4, 6), depth_range=(8, 12)
        )
        per_packet = baselines.search_per_packet(windowed, target=TOFINO1, depth_range=(8,))
        return splidt_model, splidt_report, netbeacon, per_packet

    def test_splidt_uses_more_features_than_topk(self, comparison):
        splidt_model, _, netbeacon, _ = comparison
        assert netbeacon is not None
        assert len(splidt_model.features_used()) > netbeacon.model.config.top_k

    def test_splidt_matches_or_beats_netbeacon(self, comparison):
        _, splidt_report, netbeacon, _ = comparison
        assert splidt_report.f1_score >= netbeacon.report.f1_score - 0.03

    def test_stateful_models_beat_per_packet(self, comparison):
        _, splidt_report, _, per_packet = comparison
        assert splidt_report.f1_score > per_packet.report.f1_score

    def test_splidt_register_footprint_constant(self, comparison):
        splidt_model, *_ = comparison
        layout = core.splidt_register_layout(splidt_model)
        # k = 4 at 32 bits regardless of the >4 total features the model uses.
        assert layout.feature_bits == 4 * 32


class TestMiniDesignSearch:
    def test_search_produces_pareto_frontier(self):
        dataset = datasets.load_dataset("D2", n_flows=250, seed=9)
        store = datasets.DatasetStore(dataset, random_state=9)
        search = core.DesignSearch(
            store, target=TOFINO1, depth_range=(2, 8), k_range=(1, 4),
            partitions_range=(1, 3), seed=9,
        )
        result = search.run(n_iterations=6)
        front = result.pareto_candidates()
        assert front
        table = result.pareto_table((100_000, 1_000_000))
        best_100k = table[100_000]
        assert best_100k is not None
        assert best_100k.f1_score > 0
