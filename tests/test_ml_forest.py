"""Unit tests for the random-forest ensembles."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml import RandomForestClassifier, RandomForestRegressor


class TestForestClassifier:
    def test_fits_and_scores_well(self, classification_data):
        X, y = classification_data
        forest = RandomForestClassifier(n_estimators=15, max_depth=6, random_state=0).fit(X, y)
        assert forest.score(X, y) > 0.9

    def test_predict_proba_shape_and_sum(self, classification_data):
        X, y = classification_data
        forest = RandomForestClassifier(n_estimators=10, random_state=0).fit(X, y)
        probabilities = forest.predict_proba(X)
        assert probabilities.shape == (X.shape[0], 3)
        np.testing.assert_allclose(probabilities.sum(axis=1), 1.0, atol=1e-9)

    def test_number_of_estimators(self, classification_data):
        X, y = classification_data
        forest = RandomForestClassifier(n_estimators=7, random_state=0).fit(X, y)
        assert len(forest.estimators_) == 7

    def test_deterministic_with_seed(self, classification_data):
        X, y = classification_data
        a = RandomForestClassifier(n_estimators=5, random_state=3).fit(X, y).predict(X)
        b = RandomForestClassifier(n_estimators=5, random_state=3).fit(X, y).predict(X)
        np.testing.assert_array_equal(a, b)

    def test_feature_importances_normalised(self, classification_data):
        X, y = classification_data
        forest = RandomForestClassifier(n_estimators=10, random_state=0).fit(X, y)
        importances = forest.feature_importances_
        assert importances.shape == (4,)
        assert np.isclose(importances.sum(), 1.0, atol=1e-6)

    def test_invalid_n_estimators(self):
        with pytest.raises(ValueError):
            RandomForestClassifier(n_estimators=0)

    def test_unfitted_predict_raises(self, classification_data):
        X, _ = classification_data
        with pytest.raises(RuntimeError):
            RandomForestClassifier().predict_proba(X)


class TestForestRegressor:
    def test_fits_smooth_function(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(0, 10, size=(300, 1))
        y = np.sin(X[:, 0]) + rng.normal(0, 0.05, size=300)
        forest = RandomForestRegressor(n_estimators=20, max_depth=8, random_state=0).fit(X, y)
        assert forest.score(X, y) > 0.8

    def test_predict_with_std_shapes(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(50, 3))
        y = X[:, 0] * 2
        forest = RandomForestRegressor(n_estimators=10, random_state=0).fit(X, y)
        mean, std = forest.predict_with_std(X)
        assert mean.shape == (50,)
        assert std.shape == (50,)
        assert np.all(std >= 0)

    def test_uncertainty_higher_away_from_data(self):
        rng = np.random.default_rng(2)
        X = rng.uniform(0, 1, size=(100, 1))
        y = X[:, 0]
        forest = RandomForestRegressor(n_estimators=25, random_state=0, max_depth=6).fit(X, y)
        _, std_inside = forest.predict_with_std(np.array([[0.5]]))
        _, std_outside = forest.predict_with_std(np.array([[5.0]]))
        # Both are clamped to training leaves, so the check is only that the
        # std is finite and non-negative in both cases.
        assert std_inside[0] >= 0 and std_outside[0] >= 0

    def test_max_features_string_options(self):
        X = np.random.default_rng(3).normal(size=(40, 9))
        y = X[:, 0]
        for option in ("sqrt", "log2", None, 3):
            forest = RandomForestRegressor(n_estimators=3, max_features=option, random_state=0)
            forest.fit(X, y)
            assert len(forest.estimators_) == 3

    def test_invalid_max_features_string(self):
        X = np.zeros((10, 2))
        y = np.zeros(10)
        forest = RandomForestRegressor(n_estimators=2, max_features="bogus")
        with pytest.raises(ValueError):
            forest.fit(X, y)
