"""Unit tests for classification metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml.metrics import (
    accuracy_score,
    confusion_matrix,
    f1_score,
    precision_recall_f1,
    precision_score,
    recall_score,
)


class TestAccuracy:
    def test_perfect(self):
        assert accuracy_score([1, 2, 3], [1, 2, 3]) == 1.0

    def test_all_wrong(self):
        assert accuracy_score([1, 1, 1], [2, 2, 2]) == 0.0

    def test_half_right(self):
        assert accuracy_score([1, 1, 2, 2], [1, 1, 1, 1]) == 0.5

    def test_empty(self):
        assert accuracy_score(np.array([]), np.array([])) == 0.0


class TestConfusionMatrix:
    def test_shape_covers_all_classes(self):
        matrix = confusion_matrix([0, 1, 2], [0, 0, 0])
        assert matrix.shape == (3, 3)

    def test_diagonal_for_perfect_predictions(self):
        matrix = confusion_matrix([0, 1, 1, 2], [0, 1, 1, 2])
        np.testing.assert_array_equal(np.diag(matrix), [1, 2, 1])
        assert matrix.sum() == 4

    def test_off_diagonal_counts(self):
        matrix = confusion_matrix([0, 0, 1], [1, 1, 0])
        assert matrix[0, 1] == 2
        assert matrix[1, 0] == 1

    def test_rows_sum_to_true_counts(self):
        y_true = [0, 0, 1, 2, 2, 2]
        y_pred = [0, 1, 1, 0, 2, 2]
        matrix = confusion_matrix(y_true, y_pred)
        np.testing.assert_array_equal(matrix.sum(axis=1), [2, 1, 3])

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            confusion_matrix([0, 1], [0])


class TestF1:
    def test_perfect_macro_f1(self):
        assert f1_score([0, 1, 2], [0, 1, 2], "macro") == pytest.approx(1.0)

    def test_perfect_weighted_f1(self):
        assert f1_score([0, 0, 1], [0, 0, 1], "weighted") == pytest.approx(1.0)

    def test_all_wrong_f1_is_zero(self):
        assert f1_score([0, 0], [1, 1], "macro") == 0.0

    def test_binary_known_value(self):
        # TP=2, FP=1, FN=1 for class 1; precision=2/3, recall=2/3, F1=2/3.
        y_true = [1, 1, 1, 0, 0, 0]
        y_pred = [1, 1, 0, 1, 0, 0]
        _, _, f1 = precision_recall_f1(y_true, y_pred, "macro")
        assert f1 == pytest.approx(2 / 3, abs=1e-9)

    def test_micro_equals_accuracy_for_single_label(self):
        y_true = [0, 1, 2, 1, 0]
        y_pred = [0, 1, 1, 1, 2]
        _, _, micro = precision_recall_f1(y_true, y_pred, "micro")
        assert micro == pytest.approx(accuracy_score(y_true, y_pred))

    def test_weighted_at_least_for_majority_class_correct(self):
        y_true = [0] * 90 + [1] * 10
        y_pred = [0] * 100
        weighted = f1_score(y_true, y_pred, "weighted")
        macro = f1_score(y_true, y_pred, "macro")
        assert weighted > macro

    def test_invalid_average_raises(self):
        with pytest.raises(ValueError):
            f1_score([0], [0], "bogus")

    def test_f1_bounded(self):
        rng = np.random.default_rng(0)
        y_true = rng.integers(0, 4, 50)
        y_pred = rng.integers(0, 4, 50)
        for average in ("macro", "weighted", "micro"):
            value = f1_score(y_true, y_pred, average)
            assert 0.0 <= value <= 1.0


class TestPrecisionRecall:
    def test_precision_perfect(self):
        assert precision_score([0, 1], [0, 1]) == pytest.approx(1.0)

    def test_recall_perfect(self):
        assert recall_score([0, 1], [0, 1]) == pytest.approx(1.0)

    def test_precision_recall_asymmetry(self):
        # Predicting everything as class 1: recall for class 1 is 1, precision low.
        y_true = [0, 0, 0, 1]
        y_pred = [1, 1, 1, 1]
        precision, recall, _ = precision_recall_f1(y_true, y_pred, "macro")
        assert recall == pytest.approx(0.5)   # class 0 recall 0, class 1 recall 1
        assert precision == pytest.approx(0.125)  # class 0: 0, class 1: 1/4

    def test_string_labels(self):
        assert f1_score(["a", "b"], ["a", "b"]) == pytest.approx(1.0)
