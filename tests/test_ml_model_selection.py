"""Unit tests for train/test splitting and stratified K-fold."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml import StratifiedKFold, train_test_split


class TestTrainTestSplit:
    def test_sizes_roughly_match_fraction(self):
        X = np.arange(200).reshape(-1, 1)
        y = np.repeat([0, 1], 100)
        X_train, X_test, y_train, y_test = train_test_split(X, y, test_size=0.25, random_state=0)
        assert len(X_test) == pytest.approx(50, abs=2)
        assert len(X_train) + len(X_test) == 200
        assert len(y_train) == len(X_train)
        assert len(y_test) == len(X_test)

    def test_no_overlap_between_splits(self):
        X = np.arange(100).reshape(-1, 1)
        y = np.repeat([0, 1], 50)
        X_train, X_test, _, _ = train_test_split(X, y, test_size=0.3, random_state=1)
        assert set(X_train[:, 0]).isdisjoint(set(X_test[:, 0]))

    def test_stratification_preserves_class_ratio(self):
        y = np.array([0] * 90 + [1] * 10)
        X = np.arange(100).reshape(-1, 1)
        _, _, y_train, y_test = train_test_split(X, y, test_size=0.3, random_state=2)
        assert (y_test == 1).sum() >= 1
        train_ratio = (y_train == 1).mean()
        assert 0.03 < train_ratio < 0.2

    def test_every_class_in_test_split(self):
        y = np.repeat(np.arange(5), 10)
        X = np.arange(50).reshape(-1, 1)
        _, _, _, y_test = train_test_split(X, y, test_size=0.2, random_state=3)
        assert set(np.unique(y_test)) == set(range(5))

    def test_invalid_test_size(self):
        with pytest.raises(ValueError):
            train_test_split(np.zeros((4, 1)), np.zeros(4), test_size=1.5)

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            train_test_split(np.zeros((4, 1)), np.zeros(5))

    def test_deterministic_with_seed(self):
        X = np.arange(60).reshape(-1, 1)
        y = np.repeat([0, 1, 2], 20)
        a = train_test_split(X, y, random_state=7)
        b = train_test_split(X, y, random_state=7)
        np.testing.assert_array_equal(a[1], b[1])

    def test_unstratified_split(self):
        X = np.arange(40).reshape(-1, 1)
        y = np.repeat([0, 1], 20)
        X_train, X_test, _, _ = train_test_split(X, y, test_size=0.5, stratify=False, random_state=0)
        assert len(X_train) + len(X_test) == 40


class TestStratifiedKFold:
    def test_folds_partition_all_samples(self):
        y = np.repeat([0, 1, 2], 20)
        X = np.arange(60).reshape(-1, 1)
        kfold = StratifiedKFold(n_splits=5, random_state=0)
        seen = []
        for train_idx, test_idx in kfold.split(X, y):
            assert set(train_idx).isdisjoint(test_idx)
            seen.extend(test_idx.tolist())
        assert sorted(seen) == list(range(60))

    def test_number_of_folds(self):
        y = np.repeat([0, 1], 25)
        X = np.zeros((50, 1))
        folds = list(StratifiedKFold(n_splits=4, random_state=0).split(X, y))
        assert len(folds) == 4

    def test_class_balance_in_folds(self):
        y = np.repeat([0, 1], 50)
        X = np.zeros((100, 1))
        for _, test_idx in StratifiedKFold(n_splits=5, random_state=0).split(X, y):
            labels = y[test_idx]
            assert abs((labels == 0).sum() - (labels == 1).sum()) <= 2

    def test_invalid_n_splits(self):
        with pytest.raises(ValueError):
            StratifiedKFold(n_splits=1)
