"""Unit tests for the split-search primitives."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml.splitter import (
    entropy_impurity,
    find_best_split,
    gini_impurity,
    mse_impurity,
    node_impurity,
)


class TestImpurities:
    def test_gini_pure(self):
        assert gini_impurity(np.array([10.0, 0.0])) == 0.0

    def test_gini_balanced_two_classes(self):
        assert gini_impurity(np.array([5.0, 5.0])) == pytest.approx(0.5)

    def test_gini_balanced_four_classes(self):
        assert gini_impurity(np.array([1.0, 1.0, 1.0, 1.0])) == pytest.approx(0.75)

    def test_gini_empty(self):
        assert gini_impurity(np.array([0.0, 0.0])) == 0.0

    def test_entropy_pure(self):
        assert entropy_impurity(np.array([7.0, 0.0])) == 0.0

    def test_entropy_balanced_is_one_bit(self):
        assert entropy_impurity(np.array([4.0, 4.0])) == pytest.approx(1.0)

    def test_entropy_monotone_in_classes(self):
        two = entropy_impurity(np.array([1.0, 1.0]))
        four = entropy_impurity(np.array([1.0, 1.0, 1.0, 1.0]))
        assert four > two

    def test_mse_constant_is_zero(self):
        assert mse_impurity(np.full(10, 3.0)) == 0.0

    def test_mse_is_variance(self):
        y = np.array([0.0, 2.0])
        assert mse_impurity(y) == pytest.approx(1.0)

    def test_node_impurity_dispatch(self):
        counts = np.array([3.0, 3.0])
        assert node_impurity(counts, "gini") == pytest.approx(0.5)
        assert node_impurity(counts, "entropy") == pytest.approx(1.0)

    def test_node_impurity_unknown_criterion(self):
        with pytest.raises(ValueError):
            node_impurity(np.array([1.0]), "mae")


class TestFindBestSplit:
    def _rng(self):
        return np.random.default_rng(0)

    def test_obvious_split_found(self):
        X = np.array([[0.0], [1.0], [10.0], [11.0]])
        y = np.array([0, 0, 1, 1])
        split = find_best_split(
            X, y, allowed_features=np.array([0]), criterion="gini",
            min_samples_leaf=1, n_classes=2, rng=self._rng(),
        )
        assert split is not None
        assert split.feature == 0
        assert 1.0 < split.threshold < 10.0
        np.testing.assert_array_equal(split.left_mask, [True, True, False, False])

    def test_constant_feature_gives_none(self):
        X = np.ones((10, 1))
        y = np.array([0, 1] * 5)
        split = find_best_split(
            X, y, allowed_features=np.array([0]), criterion="gini",
            min_samples_leaf=1, n_classes=2, rng=self._rng(),
        )
        assert split is None

    def test_pure_labels_give_none(self):
        X = np.arange(10, dtype=float).reshape(-1, 1)
        y = np.zeros(10, dtype=int)
        split = find_best_split(
            X, y, allowed_features=np.array([0]), criterion="gini",
            min_samples_leaf=1, n_classes=1, rng=self._rng(),
        )
        assert split is None

    def test_min_samples_leaf_blocks_extreme_cuts(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0], [4.0], [5.0]])
        y = np.array([0, 1, 1, 1, 1, 1])
        split = find_best_split(
            X, y, allowed_features=np.array([0]), criterion="gini",
            min_samples_leaf=3, n_classes=2, rng=self._rng(),
        )
        if split is not None:
            assert split.left_mask.sum() >= 3
            assert (~split.left_mask).sum() >= 3

    def test_too_few_samples_returns_none(self):
        X = np.array([[0.0], [1.0]])
        y = np.array([0, 1])
        split = find_best_split(
            X, y, allowed_features=np.array([0]), criterion="gini",
            min_samples_leaf=2, n_classes=2, rng=self._rng(),
        )
        assert split is None

    def test_picks_most_informative_feature(self):
        rng = np.random.default_rng(1)
        noise = rng.normal(size=100)
        informative = np.concatenate([np.zeros(50), np.ones(50) * 10])
        X = np.column_stack([noise, informative])
        y = np.repeat([0, 1], 50)
        split = find_best_split(
            X, y, allowed_features=np.array([0, 1]), criterion="gini",
            min_samples_leaf=1, n_classes=2, rng=self._rng(),
        )
        assert split.feature == 1

    def test_allowed_features_only(self):
        informative = np.concatenate([np.zeros(50), np.ones(50) * 10])
        X = np.column_stack([informative, informative * 2])
        y = np.repeat([0, 1], 50)
        split = find_best_split(
            X, y, allowed_features=np.array([1]), criterion="gini",
            min_samples_leaf=1, n_classes=2, rng=self._rng(),
        )
        assert split.feature == 1

    def test_regression_split(self):
        X = np.array([[0.0], [1.0], [2.0], [10.0], [11.0], [12.0]])
        y = np.array([0.0, 0.0, 0.0, 5.0, 5.0, 5.0])
        split = find_best_split(
            X, y, allowed_features=np.array([0]), criterion="mse",
            min_samples_leaf=1, n_classes=None, rng=self._rng(),
        )
        assert split is not None
        assert 2.0 < split.threshold < 10.0

    def test_improvement_is_positive(self):
        X = np.array([[0.0], [1.0], [10.0], [11.0]])
        y = np.array([0, 0, 1, 1])
        split = find_best_split(
            X, y, allowed_features=np.array([0]), criterion="entropy",
            min_samples_leaf=1, n_classes=2, rng=self._rng(),
        )
        assert split.improvement > 0

    def test_threshold_separates_masks(self):
        rng = np.random.default_rng(5)
        X = rng.normal(size=(50, 3))
        y = (X[:, 2] > 0).astype(int)
        split = find_best_split(
            X, y, allowed_features=np.arange(3), criterion="gini",
            min_samples_leaf=1, n_classes=2, rng=self._rng(),
        )
        assert split is not None
        np.testing.assert_array_equal(split.left_mask, X[:, split.feature] <= split.threshold)
