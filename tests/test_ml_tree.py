"""Unit tests for the CART decision-tree estimators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml import DecisionTreeClassifier, DecisionTreeRegressor
from repro.ml._tree import LEAF


class TestClassifierBasics:
    def test_fits_and_predicts_training_data(self, classification_data):
        X, y = classification_data
        tree = DecisionTreeClassifier(max_depth=8).fit(X, y)
        assert tree.score(X, y) > 0.95

    def test_predict_returns_known_classes(self, classification_data):
        X, y = classification_data
        tree = DecisionTreeClassifier(max_depth=4).fit(X, y)
        assert set(np.unique(tree.predict(X))) <= set(np.unique(y))

    def test_predict_proba_rows_sum_to_one(self, classification_data):
        X, y = classification_data
        tree = DecisionTreeClassifier(max_depth=4).fit(X, y)
        probabilities = tree.predict_proba(X)
        assert probabilities.shape == (X.shape[0], 3)
        np.testing.assert_allclose(probabilities.sum(axis=1), 1.0)

    def test_string_labels_round_trip(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array(["cat", "cat", "dog", "dog"])
        tree = DecisionTreeClassifier().fit(X, y)
        assert list(tree.predict(X)) == ["cat", "cat", "dog", "dog"]

    def test_single_class_gives_single_leaf(self):
        X = np.random.default_rng(0).normal(size=(20, 3))
        y = np.zeros(20, dtype=int)
        tree = DecisionTreeClassifier().fit(X, y)
        assert tree.get_n_leaves() == 1
        assert np.all(tree.predict(X) == 0)

    def test_pure_node_stops_splitting(self):
        X = np.array([[0.0], [0.1], [5.0], [5.1]])
        y = np.array([0, 0, 1, 1])
        tree = DecisionTreeClassifier(max_depth=10).fit(X, y)
        assert tree.get_depth() == 1
        assert tree.get_n_leaves() == 2


class TestClassifierConstraints:
    def test_max_depth_respected(self, classification_data):
        X, y = classification_data
        for depth in (1, 2, 3, 5):
            tree = DecisionTreeClassifier(max_depth=depth).fit(X, y)
            assert tree.get_depth() <= depth

    def test_min_samples_leaf_respected(self, classification_data):
        X, y = classification_data
        tree = DecisionTreeClassifier(max_depth=10, min_samples_leaf=15).fit(X, y)
        leaf_ids = tree.apply(X)
        _, counts = np.unique(leaf_ids, return_counts=True)
        assert counts.min() >= 15

    def test_feature_budget_limits_distinct_features(self, classification_data):
        X, y = classification_data
        tree = DecisionTreeClassifier(max_depth=10, max_distinct_features=2).fit(X, y)
        assert len(tree.features_used()) <= 2

    def test_feature_budget_of_one(self, classification_data):
        X, y = classification_data
        tree = DecisionTreeClassifier(max_depth=10, max_distinct_features=1).fit(X, y)
        assert len(tree.features_used()) <= 1

    def test_allowed_features_restricts_splits(self, classification_data):
        X, y = classification_data
        tree = DecisionTreeClassifier(max_depth=8, allowed_features=[0, 3]).fit(X, y)
        assert tree.features_used() <= {0, 3}

    def test_allowed_features_out_of_range_raises(self, classification_data):
        X, y = classification_data
        tree = DecisionTreeClassifier(allowed_features=[99])
        with pytest.raises(ValueError):
            tree.fit(X, y)

    def test_unconstrained_tree_beats_budgeted_tree(self, classification_data):
        X, y = classification_data
        free = DecisionTreeClassifier(max_depth=8).fit(X, y)
        budgeted = DecisionTreeClassifier(max_depth=8, max_distinct_features=1).fit(X, y)
        assert free.score(X, y) >= budgeted.score(X, y)


class TestClassifierValidation:
    def test_invalid_max_depth(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier(max_depth=0)

    def test_invalid_min_samples_leaf(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier(min_samples_leaf=0)

    def test_invalid_criterion(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier(criterion="nonsense")

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(np.zeros((5, 2)), np.zeros(4))

    def test_empty_dataset(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(np.zeros((0, 2)), np.zeros(0))

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            DecisionTreeClassifier().predict(np.zeros((1, 2)))

    def test_1d_X_rejected(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(np.zeros(5), np.zeros(5))


class TestClassifierStructure:
    def test_feature_importances_sum_to_one(self, classification_data):
        X, y = classification_data
        tree = DecisionTreeClassifier(max_depth=6).fit(X, y)
        importances = tree.feature_importances_
        assert importances.shape == (4,)
        assert importances.min() >= 0
        assert np.isclose(importances.sum(), 1.0)

    def test_apply_returns_leaf_ids(self, classification_data):
        X, y = classification_data
        tree = DecisionTreeClassifier(max_depth=4).fit(X, y)
        leaf_ids = tree.apply(X)
        leaf_nodes = {node.node_id for node in tree.tree_.leaves()}
        assert set(leaf_ids) <= leaf_nodes

    def test_entropy_criterion_works(self, classification_data):
        X, y = classification_data
        tree = DecisionTreeClassifier(max_depth=6, criterion="entropy").fit(X, y)
        assert tree.score(X, y) > 0.9

    def test_leaf_nodes_have_no_children(self, classification_data):
        X, y = classification_data
        tree = DecisionTreeClassifier(max_depth=5).fit(X, y)
        for node in tree.tree_.nodes:
            if node.is_leaf:
                assert node.left == LEAF and node.right == LEAF
            else:
                assert node.left != LEAF and node.right != LEAF

    def test_children_deeper_than_parents(self, classification_data):
        X, y = classification_data
        tree = DecisionTreeClassifier(max_depth=5).fit(X, y)
        for node in tree.tree_.nodes:
            if not node.is_leaf:
                assert tree.tree_.nodes[node.left].depth == node.depth + 1
                assert tree.tree_.nodes[node.right].depth == node.depth + 1

    def test_node_sample_counts_are_consistent(self, classification_data):
        X, y = classification_data
        tree = DecisionTreeClassifier(max_depth=5).fit(X, y)
        for node in tree.tree_.nodes:
            if not node.is_leaf:
                left = tree.tree_.nodes[node.left]
                right = tree.tree_.nodes[node.right]
                assert node.n_samples == left.n_samples + right.n_samples

    def test_deterministic_with_same_seed(self, classification_data):
        X, y = classification_data
        a = DecisionTreeClassifier(max_depth=6, random_state=5).fit(X, y)
        b = DecisionTreeClassifier(max_depth=6, random_state=5).fit(X, y)
        np.testing.assert_array_equal(a.predict(X), b.predict(X))


class TestRegressor:
    def test_fits_linear_step_function(self):
        X = np.linspace(0, 10, 200).reshape(-1, 1)
        y = (X[:, 0] > 5).astype(float) * 3.0
        reg = DecisionTreeRegressor(max_depth=2).fit(X, y)
        predictions = reg.predict(X)
        assert np.abs(predictions - y).max() < 0.5

    def test_score_is_r2(self):
        X = np.linspace(0, 10, 100).reshape(-1, 1)
        y = X[:, 0] ** 2
        reg = DecisionTreeRegressor(max_depth=6).fit(X, y)
        assert reg.score(X, y) > 0.95

    def test_constant_target_single_leaf(self):
        X = np.random.default_rng(1).normal(size=(30, 2))
        y = np.full(30, 7.0)
        reg = DecisionTreeRegressor().fit(X, y)
        assert reg.get_n_leaves() == 1
        np.testing.assert_allclose(reg.predict(X), 7.0)

    def test_rejects_non_mse_criterion(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor(criterion="gini")

    def test_max_depth_respected(self):
        X = np.random.default_rng(2).normal(size=(200, 3))
        y = X[:, 0] + X[:, 1] * 2
        reg = DecisionTreeRegressor(max_depth=3).fit(X, y)
        assert reg.get_depth() <= 3

    def test_prediction_within_target_range(self):
        X = np.random.default_rng(3).normal(size=(100, 2))
        y = np.random.default_rng(4).uniform(-5, 5, size=100)
        reg = DecisionTreeRegressor(max_depth=5).fit(X, y)
        predictions = reg.predict(X)
        assert predictions.min() >= y.min() - 1e-9
        assert predictions.max() <= y.max() + 1e-9
