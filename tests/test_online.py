"""The online loop (`repro.online`): drift, incremental retrain, hot swap.

Covers the pieces bottom-up — config validation, the Page–Hinkley and
feature-distribution detectors, the Hoeffding subtree learner, the
recursive incremental trainer — then the controller's state machine against
a scripted fake engine, and finally the full phase-change demo with its
acceptance thresholds (the same run the ``online-smoke`` CI job asserts).
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.core.range_marking import FeatureQuantizer, generate_rules
from repro.dataplane import SpliDTDataPlane, replay_dataset
from repro.features.flowmeter import FlowMeter
from repro.ml.tree import DecisionTreeClassifier
from repro.online import (
    COOLDOWN,
    MAX_RECOVERY_GAP,
    MIN_STATIC_DROP,
    MONITORING,
    RETRAINING,
    DriftMonitor,
    FeatureDistributionMonitor,
    HoeffdingSubtreeLearner,
    IncrementalPartitionedTrainer,
    OnlineConfig,
    OnlineConfigError,
    OnlineController,
    OnlineProgramFactory,
    PageHinkley,
    default_online_config,
    run_phase_change_demo,
)


class TestOnlineConfig:
    def test_defaults_validate_and_chain(self):
        config = OnlineConfig()
        assert config.validate() is config
        assert not config.enabled and config.detector == "page-hinkley"

    @pytest.mark.parametrize(
        "overrides",
        [
            {"detector": "adwin"},
            {"window": 0},
            {"ph_delta": -0.1},
            {"ph_threshold": 0.0},
            {"error_threshold": 0.0},
            {"error_threshold": 1.5},
            {"warmup_flows": -1},
            {"min_retrain_flows": 0},
            {"retrain_window": 8, "min_retrain_flows": 16},
            {"retrain_passes": 0},
            {"cooldown_flows": -1},
            {"exit_confidence": 0.5},
            {"exit_confidence": 1.1},
        ],
    )
    def test_invalid_configs_raise(self, overrides):
        with pytest.raises(OnlineConfigError):
            OnlineConfig(**overrides).validate()

    def test_config_error_is_value_error(self):
        with pytest.raises(ValueError, match="detector"):
            OnlineConfig(detector="bogus").validate()

    def test_replace_returns_new_config(self):
        config = OnlineConfig()
        other = config.replace(enabled=True, window=16)
        assert (other.enabled, other.window) == (True, 16)
        assert not config.enabled and config.window == 64

    def test_demo_default_config_is_valid(self):
        config = default_online_config()
        assert config.enabled and config.validate() is config


class TestPageHinkley:
    def test_no_false_alarm_on_stationary_noise(self):
        # The tuned serve-path defaults must absorb a stationary 15% error
        # rate without ever alarming.
        config = OnlineConfig()
        rng = np.random.default_rng(5)
        detector = PageHinkley(
            delta=config.ph_delta,
            threshold=config.ph_threshold,
            min_samples=config.warmup_flows,
        )
        alarms = [detector.update(float(rng.random() < 0.15)) for _ in range(600)]
        assert not any(alarms)

    def test_detects_error_rate_jump_quickly(self):
        config = OnlineConfig()
        rng = np.random.default_rng(5)
        detector = PageHinkley(
            delta=config.ph_delta,
            threshold=config.ph_threshold,
            min_samples=config.warmup_flows,
        )
        for _ in range(200):
            assert not detector.update(float(rng.random() < 0.15))
        lag = None
        for sample in range(1, 101):
            if detector.update(float(rng.random() < 0.85)):
                lag = sample
                break
        assert lag is not None and lag <= 30

    def test_reset_forgets_history(self):
        detector = PageHinkley(threshold=1.0, min_samples=2)
        for _ in range(20):
            detector.update(0.0)
        for _ in range(20):
            detector.update(1.0)
        assert detector.statistic > 0.0
        detector.reset()
        assert detector.n == 0 and detector.statistic == 0.0

    def test_threshold_must_be_positive(self):
        with pytest.raises(ValueError, match="threshold"):
            PageHinkley(threshold=0.0)


class TestFeatureDistributionMonitor:
    def test_stationary_stream_scores_near_zero(self):
        rng = np.random.default_rng(2)
        monitor = FeatureDistributionMonitor(window=32)
        for _ in range(128):
            monitor.observe(rng.normal(size=4))
        monitor.freeze_reference()
        for _ in range(64):
            monitor.observe(rng.normal(size=4))
        assert monitor.shift_score() < 1.0

    def test_mean_shift_scores_large(self):
        rng = np.random.default_rng(2)
        monitor = FeatureDistributionMonitor(window=32)
        for _ in range(128):
            monitor.observe(rng.normal(size=4))
        monitor.freeze_reference()
        for _ in range(64):
            monitor.observe(rng.normal(size=4) + [0.0, 5.0, 0.0, 0.0])
        assert monitor.shift_score() > 3.0

    def test_score_is_zero_before_reference(self):
        monitor = FeatureDistributionMonitor()
        monitor.observe([1.0, 2.0])
        assert monitor.shift_score() == 0.0

    def test_freeze_needs_two_observations(self):
        monitor = FeatureDistributionMonitor()
        monitor.observe([1.0])
        with pytest.raises(ValueError, match="2 observations"):
            monitor.freeze_reference()

    def test_reset_forgets_reference(self):
        monitor = FeatureDistributionMonitor(window=4)
        for value in (1.0, 2.0, 3.0):
            monitor.observe([value])
        monitor.freeze_reference()
        monitor.reset()
        assert monitor.n_observed == 0 and monitor.shift_score() == 0.0


class TestDriftMonitor:
    def test_error_window_detector_alarms_past_threshold(self):
        config = OnlineConfig(
            detector="error-window", window=8, warmup_flows=8, error_threshold=0.5
        ).validate()
        monitor = DriftMonitor(config)
        assert not any(monitor.observe(0, 0) for _ in range(16))
        alarms = [monitor.observe(0, 1) for _ in range(8)]
        assert any(alarms)
        assert monitor.error_rate > 0.0

    def test_page_hinkley_detector_alarms_on_shift(self):
        monitor = DriftMonitor(OnlineConfig(warmup_flows=16).validate())
        assert not any(monitor.observe(1, 1) for _ in range(64))
        assert any(monitor.observe(1, 0) for _ in range(64))

    def test_reset_rearms_the_monitor(self):
        monitor = DriftMonitor(OnlineConfig(warmup_flows=16).validate())
        for _ in range(64):
            monitor.observe(1, 0)
        monitor.reset()
        assert monitor.n_observed == 0
        assert monitor.error_rate == 0.0
        assert not any(monitor.observe(1, 1) for _ in range(64))


@pytest.fixture(scope="module")
def separable_quantizer(classification_data):
    X, _ = classification_data
    return FeatureQuantizer(bit_width=12).fit(np.clip(X, 0.0, None))


def _feed(learner, X, y, passes=2):
    for _ in range(passes):
        for vector, label in zip(X, y):
            learner.observe(vector, int(label))
        learner.force_expand()
    return learner


class TestHoeffdingSubtreeLearner:
    def test_learns_separable_classes(self, classification_data, separable_quantizer):
        X, y = classification_data
        learner = _feed(
            HoeffdingSubtreeLearner(
                n_classes=3, max_depth=3, quantizer=separable_quantizer
            ),
            X, y,
        )
        frozen = learner.freeze()
        accuracy = float(np.mean(frozen.predict(X) == y))
        assert accuracy >= 0.9

    def test_matches_batch_cart_on_same_budget(
        self, classification_data, separable_quantizer
    ):
        # With forced expansion over a finite buffer the streamed tree
        # should not trail a batch CART fit of the same depth by much.
        X, y = classification_data
        learner = _feed(
            HoeffdingSubtreeLearner(
                n_classes=3, max_depth=2, quantizer=separable_quantizer
            ),
            X, y,
        )
        streamed = float(np.mean(learner.freeze().predict(X) == y))
        cart = DecisionTreeClassifier(max_depth=2).fit(X, y)
        batch = float(np.mean(cart.predict(X) == y))
        assert streamed >= batch - 0.05

    def test_respects_depth_budget(self, classification_data, separable_quantizer):
        X, y = classification_data
        learner = _feed(
            HoeffdingSubtreeLearner(
                n_classes=3, max_depth=2, quantizer=separable_quantizer
            ),
            X, y, passes=4,
        )
        assert learner.freeze().get_depth() <= 2

    def test_respects_feature_budget(self, classification_data, separable_quantizer):
        X, y = classification_data
        learner = _feed(
            HoeffdingSubtreeLearner(
                n_classes=3, max_depth=3, quantizer=separable_quantizer,
                max_distinct_features=1,
            ),
            X, y,
        )
        assert len(learner.used_features) <= 1
        assert learner.freeze().features_used() <= learner.used_features

    def test_force_expand_noop_on_pure_leaf(self, separable_quantizer):
        learner = HoeffdingSubtreeLearner(
            n_classes=3, max_depth=2, quantizer=separable_quantizer
        )
        for _ in range(16):
            learner.observe([1.0, 1.0, 1.0, 1.0], 0)
        assert learner.force_expand() == 0
        assert learner.freeze().get_n_leaves() == 1

    def test_emitted_thresholds_are_raw_feature_space(
        self, classification_data, separable_quantizer
    ):
        X, y = classification_data
        learner = _feed(
            HoeffdingSubtreeLearner(
                n_classes=3, max_depth=2, quantizer=separable_quantizer
            ),
            X, y,
        )
        tree = learner.freeze().tree_
        for node in tree.nodes:
            if node.feature >= 0:
                column = X[:, node.feature]
                assert column.min() - 1.0 <= node.threshold <= column.max() + 1.0


@pytest.fixture(scope="module")
def buffered_flows(small_dataset, splidt_config):
    """(windows, label) pairs as the controller buffers them."""
    meter = FlowMeter()
    return [
        (meter.extract_windows(flow, splidt_config.n_partitions), flow.label)
        for flow in small_dataset.flows[:180]
    ]


class TestIncrementalPartitionedTrainer:
    def _trainer(self, splidt_config, splidt_rules, small_dataset):
        return IncrementalPartitionedTrainer(
            config=splidt_config,
            n_classes=len(small_dataset.class_names),
            class_names=small_dataset.class_names,
            quantizer=splidt_rules.quantizer,
        )

    def test_builds_a_deployable_model(
        self, buffered_flows, splidt_config, splidt_rules, small_dataset
    ):
        trainer = self._trainer(splidt_config, splidt_rules, small_dataset)
        for windows, label in buffered_flows:
            trainer.add_flow(windows, label)
        assert trainer.n_flows == len(buffered_flows)
        model = trainer.build_model()
        assert model.root_sid == 1
        assert model.config is splidt_config
        for subtree in model.subtrees.values():
            assert 0 <= subtree.partition < splidt_config.n_partitions
            assert subtree.tree.get_depth() <= splidt_config.partition_sizes[
                subtree.partition
            ]
            assert len(subtree.tree.features_used()) <= (
                splidt_config.features_per_subtree
            )
        # Refreshed models must beat the majority-class baseline on the
        # flows they were refreshed from.
        matrix = np.stack(
            [w[: splidt_config.n_partitions] for w, _ in buffered_flows], axis=1
        )
        labels = np.asarray([label for _, label in buffered_flows])
        predictions = model.predict_windows(matrix)
        majority = float(np.mean(labels == np.bincount(labels).argmax()))
        assert float(np.mean(predictions == labels)) > majority

    def test_refreshed_model_compiles_and_replays(
        self, buffered_flows, splidt_config, splidt_rules, small_dataset
    ):
        trainer = self._trainer(splidt_config, splidt_rules, small_dataset)
        for windows, label in buffered_flows:
            trainer.add_flow(windows, label)
        model = trainer.build_model()
        matrix = np.vstack([w[: splidt_config.n_partitions] for w, _ in buffered_flows])
        rules = generate_rules(model, matrix)
        program = SpliDTDataPlane(model, rules, flow_slots=4096)
        result = replay_dataset(program, small_dataset, engine="reference")
        # Short flows can end undecided; nearly all must get a verdict.
        assert len(result.verdicts) >= 0.9 * len(small_dataset.flows)

    def test_add_flow_validates_shape_and_label(
        self, splidt_config, splidt_rules, small_dataset, buffered_flows
    ):
        trainer = self._trainer(splidt_config, splidt_rules, small_dataset)
        with pytest.raises(ValueError, match="windows"):
            trainer.add_flow(np.zeros(4), 0)
        with pytest.raises(ValueError, match="windows"):
            trainer.add_flow(np.zeros((1, 4)), 0)
        with pytest.raises(ValueError, match="label"):
            trainer.add_flow(buffered_flows[0][0], -1)

    def test_build_without_flows_raises(
        self, splidt_config, splidt_rules, small_dataset
    ):
        trainer = self._trainer(splidt_config, splidt_rules, small_dataset)
        with pytest.raises(ValueError, match="no flows"):
            trainer.build_model()

    def test_rejects_bad_passes(self, splidt_config, splidt_rules, small_dataset):
        with pytest.raises(ValueError, match="passes"):
            IncrementalPartitionedTrainer(
                config=splidt_config,
                n_classes=3,
                quantizer=splidt_rules.quantizer,
                passes=0,
            )


class _FakeVerdict:
    def __init__(self, flow_id, label, decided_at):
        self.flow_id = flow_id
        self.label = label
        self.decided_at = decided_at


class _FakeFlow:
    def __init__(self, flow_id, label):
        self.flow_id = flow_id
        self.label = label


class _FakeEngine:
    """Scripted verdict feed for controller state-machine tests."""

    def __init__(self):
        self._verdicts = {}

    def deliver(self, flow_id, label, decided_at):
        self._verdicts[flow_id] = _FakeVerdict(flow_id, label, decided_at)

    def verdicts(self):
        return dict(self._verdicts)


def _controller(splidt_config, splidt_rules, **overrides):
    config = OnlineConfig(
        enabled=True,
        detector="error-window",
        window=8,
        warmup_flows=8,
        error_threshold=0.5,
        min_retrain_flows=8,
        retrain_window=16,
        cooldown_flows=2,
        **overrides,
    ).validate()
    return OnlineController(
        config=config,
        model_config=splidt_config,
        flow_slots=1024,
        n_classes=13,
        rules=splidt_rules,
    )


class TestOnlineControllerStateMachine:
    def test_alarm_moves_to_retraining(self, splidt_config, splidt_rules):
        controller = _controller(splidt_config, splidt_rules)
        engine = _FakeEngine()
        # Exactly enough uniformly wrong verdicts for the alarm to fire on
        # the last one (window and warmup both 8, threshold 0.5).
        controller.bind_flows([_FakeFlow(fid, 0) for fid in range(8)])
        for fid in range(8):
            engine.deliver(fid, 1, float(fid))
        controller.poll(engine, allow_swap=False)
        assert controller.state == RETRAINING
        assert [event.kind for event in controller.events] == ["drift"]
        assert controller.n_verdicts == 8

    def test_unknown_flows_are_skipped(self, splidt_config, splidt_rules):
        controller = _controller(splidt_config, splidt_rules)
        engine = _FakeEngine()
        engine.deliver(99, 1, 0.0)  # never bound: no ground truth
        controller.poll(engine, allow_swap=False)
        assert controller.state == MONITORING
        assert controller.monitor.n_observed == 0

    def test_stale_old_epoch_verdicts_do_not_feed_the_monitor(
        self, splidt_config, splidt_rules
    ):
        controller = _controller(splidt_config, splidt_rules)
        engine = _FakeEngine()
        controller.bind_flows([_FakeFlow(0, 0), _FakeFlow(1, 0)])
        controller._stale = {0}
        engine.deliver(0, 1, 0.0)  # wrong, but decided on the old epoch
        engine.deliver(1, 0, 1.0)
        controller.poll(engine, allow_swap=False)
        assert controller.monitor.n_observed == 1
        assert controller._stale == set()
        assert controller.n_verdicts == 2

    def test_cooldown_rearms_monitoring(self, splidt_config, splidt_rules):
        controller = _controller(splidt_config, splidt_rules)
        controller.state = COOLDOWN
        controller._cooldown_left = 2
        controller.monitor.observe(0, 1)
        engine = _FakeEngine()
        controller.bind_flows([_FakeFlow(0, 0), _FakeFlow(1, 0)])
        engine.deliver(0, 1, 0.0)
        engine.deliver(1, 1, 1.0)
        controller.poll(engine, allow_swap=False)
        assert controller.state == MONITORING
        # The monitor was reset when cooldown expired.
        assert controller.monitor.n_observed == 0

    def test_verdicts_graded_in_decision_order(self, splidt_config, splidt_rules):
        controller = _controller(splidt_config, splidt_rules)
        engine = _FakeEngine()
        controller.bind_flows([_FakeFlow(fid, 0) for fid in range(4)])
        # Delivered out of order; the drift event must fire at the same
        # verdict count regardless of dict insertion order.
        for fid in (3, 0, 2, 1):
            engine.deliver(fid, 0, float(fid))
        controller.poll(engine, allow_swap=False)
        assert controller.n_verdicts == 4
        assert controller.state == MONITORING


class TestOnlineProgramFactory:
    def test_is_picklable_and_builds_a_program(self, splidt_model, splidt_rules):
        factory = OnlineProgramFactory(splidt_model, splidt_rules, 2048)
        clone = pickle.loads(pickle.dumps(factory))
        program = clone()
        assert isinstance(program, SpliDTDataPlane)
        assert program.flow_slots == 2048


class TestPhaseChangeDemo:
    """The end-to-end acceptance run (same thresholds as CI's online-smoke)."""

    @pytest.fixture(scope="class")
    def demo(self):
        return run_phase_change_demo()

    def test_static_model_collapses_after_the_shift(self, demo):
        assert demo["static"]["drop"] >= MIN_STATIC_DROP
        assert demo["static_drop_ok"]

    def test_online_loop_detects_retrains_and_swaps(self, demo):
        kinds = [event["kind"] for event in demo["events"]]
        assert "drift" in kinds and "swap" in kinds
        assert len(demo["swaps"]) >= 1
        assert demo["swaps"][0]["latency_s"] > 0.0

    def test_online_loop_recovers_post_swap(self, demo):
        assert demo["recovered"]
        assert demo["online"]["recovery_gap"] <= MAX_RECOVERY_GAP
        assert demo["online"]["post_swap_flows"] > 0

    def test_pre_swap_flows_bit_identical_to_no_swap_session(self, demo):
        assert demo["pre_swap_bit_identical"]
