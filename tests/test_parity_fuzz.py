"""Differential parity fuzzer: every replay engine against the per-packet oracle.

The fused window plane (PR 6) rewrote the most semantics-dense code in the
repo; these tests are its safety net.  A seeded stdlib ``random`` generator
produces adversarial flow traces — tiny register tables (collision-heavy
slots), repeated five-tuples, zero-gap and burst-boundary inter-arrival
times, single-packet flows, empty flows, truncated streams — and every trace
is replayed through

* ``engine="reference"`` (the per-packet oracle),
* ``engine="vectorized"`` (the serving-adapter batched path),
* ``engine="fused"`` (the direct workspace-backed batched path), and
* an eager :class:`~repro.serve.MicroBatchEngine` fed randomly sized chunks,

asserting bit-identical verdicts (label, decision time, first-packet time,
recirculation count, early-exit flag), controller digests (as an unordered
multiset — emission *order* is engine-specific) and recirculation counters.

On a mismatch, the failing trace is greedily minimized (drop flows, then
halve packet lists, preserving the failure) and printed together with the
seed so the case can be replayed with::

    PARITY_FUZZ_SEED=<seed> PARITY_FUZZ_CASES=1 \
        PYTHONPATH=src python -m pytest tests/test_parity_fuzz.py -k random -s

A fixed-seed corpus runs on every invocation; a short randomized burst
(``PARITY_FUZZ_CASES``, default 3) explores new seeds each run.
"""

from __future__ import annotations

import os
import random

import numpy as np
import pytest

from repro.dataplane import SpliDTDataPlane, replay_dataset
from repro.datasets.flows import FiveTuple, Flow, FlowDataset, Packet
from repro.datasets.streams import PacketChunk
from repro.serve import MicroBatchEngine, StreamingEngine
from repro.switch.registers import make_eviction_policy

#: Fixed regression corpus — every seed here runs on every pytest invocation.
FIXED_SEEDS = tuple(range(16))

#: Inter-arrival gap choices (seconds).  0.0 exercises equal-timestamp ties,
#: 1e-9 float rounding, 1.5/2.5 straddle the burst gap threshold (2.0 s).
GAP_CHOICES = (0.0, 1e-9, 1e-4, 0.05, 0.4, 1.5, 2.5)


def _random_trace(rng: random.Random) -> tuple[list[Flow], int]:
    """A random adversarial flow trace plus a register table size."""
    table_size = rng.choice((3, 7, 16, 64, 1024))
    n_flows = rng.randint(1, 20)
    # A small five-tuple pool forces slot collisions *and* repeated tuples.
    pool_size = rng.choice((2, 3, 5, 64))
    pool = [
        FiveTuple(
            src_ip=rng.randint(1, 1 << 24),
            dst_ip=rng.randint(1, 1 << 24),
            src_port=rng.randint(1, 65535),
            dst_port=rng.choice((53, 443, 8080)),
            protocol=rng.choice((6, 17)),
        )
        for _ in range(pool_size)
    ]
    flows = []
    for flow_id in range(n_flows):
        n_packets = rng.choice((0, 1, 1, 2, 3, 4, 7, 12, 25))
        timestamp = rng.uniform(0.0, 4.0)
        packets = []
        for _ in range(n_packets):
            packets.append(
                Packet(
                    timestamp=timestamp,
                    size=rng.randint(40, 1500),
                    flags=rng.choice((0, 0x02, 0x10, 0x12, 0x18)),
                    direction=rng.choice((1, -1)),
                    payload=rng.randint(0, 1460),
                )
            )
            timestamp += rng.choice(GAP_CHOICES)
        flows.append(
            Flow(
                five_tuple=rng.choice(pool),
                packets=packets,
                label=rng.randint(0, 1),
                class_name="",
                flow_id=flow_id,
            )
        )
    return flows, table_size


def _dataset(flows: list[Flow]) -> FlowDataset:
    return FlowDataset(
        name="fuzz", description="parity-fuzz trace", flows=flows,
        class_names=["benign", "attack"],
    )


def _snapshot(program, result) -> dict:
    """Everything the engine contract promises to be bit-identical."""
    return {
        "verdicts": {
            flow_id: (
                verdict.label,
                verdict.decided_at,
                verdict.first_packet_at,
                verdict.n_recirculations,
                verdict.early_exit,
            )
            for flow_id, verdict in result.verdicts.items()
        },
        "digests": sorted(
            (digest.flow_id, digest.label, digest.timestamp, digest.sid)
            for digest in program.controller.digests
        ),
        "recirculation": dict(result.recirculation),
        "eviction": program.eviction_stats(),
    }


def _diff(name: str, oracle: dict, candidate: dict) -> str | None:
    if oracle == candidate:
        return None
    for key in ("verdicts", "digests", "recirculation", "eviction"):
        if oracle[key] != candidate[key]:
            return f"{name}: {key} diverge\n  oracle={oracle[key]!r}\n  {name}={candidate[key]!r}"
    return f"{name}: snapshots diverge"


def _run_engines(model, rules, flows, table_size, chunk_rng, eviction=None) -> str | None:
    """Replay one trace through all engines; return a mismatch description."""
    dataset = _dataset(flows)
    snapshots = {}
    for engine in ("reference", "vectorized", "fused"):
        program = SpliDTDataPlane(model, rules, flow_slots=table_size, eviction=eviction)
        result = replay_dataset(program, dataset, engine=engine)
        snapshots[engine] = _snapshot(program, result)

    # Eager micro-batch with randomly sized chunks.
    program = SpliDTDataPlane(model, rules, flow_slots=table_size, eviction=eviction)
    serving = MicroBatchEngine(
        program, eager=True, flush_flows=chunk_rng.choice((1, 2, 8))
    )
    serving.open()
    soa = dataset.packet_arrays()
    order = soa.interleave_order
    position = 0
    while True:
        step = chunk_rng.randint(1, max(1, order.size // 3 or 1))
        serving.ingest(
            PacketChunk(soa=soa, flows=dataset.flows,
                        positions=order[position:position + step])
        )
        position += step
        if position >= order.size:
            break
    serving.drain()
    snapshots["microbatch"] = _snapshot(program, serving.close())

    oracle = snapshots["reference"]
    for name in ("vectorized", "fused", "microbatch"):
        mismatch = _diff(name, oracle, snapshots[name])
        if mismatch is not None:
            return mismatch
    return None


def _run_truncated(model, rules, flows, table_size, cut_rng, eviction=None) -> str | None:
    """Streaming vs micro-batch parity on a stream cut off mid-flight."""
    dataset = _dataset(flows)
    soa = dataset.packet_arrays()
    order = soa.interleave_order
    cut = cut_rng.randint(0, order.size) if order.size else 0
    prefix = order[:cut]

    snapshots = {}
    for name, make in (
        ("streaming", lambda p: StreamingEngine(p)),
        ("microbatch", lambda p: MicroBatchEngine(p, eager=False)),
    ):
        program = SpliDTDataPlane(model, rules, flow_slots=table_size, eviction=eviction)
        serving = make(program)
        serving.open()
        serving.ingest(PacketChunk(soa=soa, flows=dataset.flows, positions=prefix))
        serving.drain()
        snapshots[name] = _snapshot(program, serving.close())
    return _diff("microbatch(truncated)", snapshots["streaming"], snapshots["microbatch"])


def _minimize(flows, still_failing) -> list[Flow]:
    """Greedy shrink: drop whole flows, then halve packet lists."""
    flows = list(flows)
    shrinking = True
    while shrinking:
        shrinking = False
        for index in range(len(flows)):
            candidate = flows[:index] + flows[index + 1:]
            if candidate and still_failing(candidate):
                flows = candidate
                shrinking = True
                break
    shrinking = True
    while shrinking:
        shrinking = False
        for index, flow in enumerate(flows):
            if flow.n_packets < 2:
                continue
            truncated = Flow(
                five_tuple=flow.five_tuple,
                packets=flow.packets[: flow.n_packets // 2],
                label=flow.label,
                class_name=flow.class_name,
                flow_id=flow.flow_id,
            )
            candidate = flows[:index] + [truncated] + flows[index + 1:]
            if still_failing(candidate):
                flows = candidate
                shrinking = True
    return flows


def _random_eviction_policy(rng: random.Random):
    """A random collision-slot eviction policy (LRU or a random idle timeout)."""
    if rng.random() < 0.4:
        return make_eviction_policy("lru")
    # Timeouts straddle the trace's inter-arrival gaps: 0.0 evicts on any
    # strictly-later packet, 5.0 almost never fires.
    timeout = rng.choice((0.0, 1e-4, 0.05, 0.5, 2.0, 5.0))
    return make_eviction_policy("idle-timeout", timeout=timeout)


def _fuzz_one(seed: int, model, rules, *, truncated: bool, eviction=None) -> None:
    rng = random.Random(seed)
    flows, table_size = _random_trace(rng)

    def check(candidate_flows):
        fresh_rng = random.Random(seed + 1)  # deterministic chunk/cut sizes
        if truncated:
            return _run_truncated(
                model, rules, candidate_flows, table_size, fresh_rng, eviction
            )
        return _run_engines(
            model, rules, candidate_flows, table_size, fresh_rng, eviction
        )

    mismatch = check(flows)
    if mismatch is None:
        return
    minimal = _minimize(flows, lambda f: check(f) is not None)
    trace = "\n".join(
        f"  flow_id={flow.flow_id} tuple={flow.five_tuple} "
        f"packets={[(p.timestamp, p.size, p.flags, p.direction, p.payload) for p in flow.packets]}"
        for flow in minimal
    )
    pytest.fail(
        f"parity mismatch (seed={seed}, table_size={table_size}, "
        f"truncated={truncated}, eviction={eviction!r}):\n{check(minimal)}\n"
        f"minimized trace ({len(minimal)} flows):\n{trace}\n"
        f"repro: PARITY_FUZZ_SEED={seed} PARITY_FUZZ_CASES=1 "
        f"python -m pytest tests/test_parity_fuzz.py -s"
    )


@pytest.mark.parametrize("seed", FIXED_SEEDS)
def test_parity_fuzz_fixed_corpus(seed, splidt_model, splidt_rules):
    """Deterministic regression corpus across all four engines."""
    _fuzz_one(seed, splidt_model, splidt_rules, truncated=False)


@pytest.mark.parametrize("seed", FIXED_SEEDS[::4])
def test_parity_fuzz_truncated_streams(seed, splidt_model, splidt_rules):
    """Streams cut off mid-flight: prefix flows replay per-packet, exactly."""
    _fuzz_one(seed, splidt_model, splidt_rules, truncated=True)


@pytest.mark.parametrize("seed", FIXED_SEEDS)
def test_parity_fuzz_eviction_corpus(seed, splidt_model, splidt_rules):
    """Eviction-enabled corpus: all four engines agree on evicted/undecided.

    Every seed replays its trace under a random eviction policy (LRU or a
    random idle timeout) — the same collision-heavy tables as the base
    corpus, so slot-capacity pressure triggers real evictions.  The snapshot
    includes :meth:`SpliDTDataPlane.eviction_stats`, locking the engines to
    identical evicted-flow sets, not just identical verdicts.
    """
    policy_rng = random.Random(0xE51C7 + seed)
    policy = _random_eviction_policy(policy_rng)
    _fuzz_one(seed, splidt_model, splidt_rules,
              truncated=seed % 4 == 3, eviction=policy)


class _MpFuzzFactory:
    """Module-level (spawn-picklable) program factory for the mp corpus."""

    def __init__(self, model, rules, table_size: int) -> None:
        self.model = model
        self.rules = rules
        self.table_size = table_size

    def __call__(self) -> SpliDTDataPlane:
        return SpliDTDataPlane(self.model, self.rules, flow_slots=self.table_size)


def _stream_mp_ring(model, rules, dataset, table_size, positions, chunk_rng):
    """One sharded-mp session over the ring transport, fed random chunks.

    Tiny ring geometry (4 slots of 32 positions) so the fuzz traffic
    exercises slot wraparound, span splitting and producer stalls, not just
    the happy path.
    """
    from repro.serve import ProcessShardedEngine

    engine = ProcessShardedEngine(
        _MpFuzzFactory(model, rules, table_size),
        workers=2,
        transport="ring",
        ring_slots=4,
        ring_span=32,
        flush_flows=2,
    )
    engine.open()
    soa = dataset.packet_arrays()
    position = 0
    while position < positions.size:
        step = chunk_rng.randint(1, max(1, positions.size // 3 or 1))
        engine.ingest(
            PacketChunk(soa=soa, flows=dataset.flows,
                        positions=positions[position:position + step])
        )
        position += step
    engine.drain()
    return engine.close()


@pytest.mark.parametrize("seed", FIXED_SEEDS[::4])
def test_parity_fuzz_sharded_mp_ring(seed, splidt_model, splidt_rules):
    """Ring-transport sharded-mp against the oracle, full and truncated.

    A 64-slot table over the corpus's small five-tuple pools keeps the
    collision pressure of the base corpus while both workers see traffic.
    Worker programs live in other processes, so the parent cannot observe
    controller digests or eviction state; the contract here is the served
    surface — verdicts (all five fields), TTD, labels and merged
    recirculation counters — checked by ``_assert_identical``.
    """
    from test_serve_engines import _assert_identical

    rng = random.Random(seed)
    flows, _ = _random_trace(rng)
    table_size = 64
    dataset = _dataset(flows)
    soa = dataset.packet_arrays()
    order = soa.interleave_order

    program = SpliDTDataPlane(splidt_model, splidt_rules, flow_slots=table_size)
    oracle = replay_dataset(program, dataset, engine="reference")
    served = _stream_mp_ring(
        splidt_model, splidt_rules, dataset, table_size, order,
        random.Random(seed + 1),
    )
    _assert_identical(oracle, served)

    # Truncated stream: cut mid-flight, reference prefix via the streaming
    # engine (the per-packet oracle for partial streams).
    cut = random.Random(seed + 2).randint(0, order.size) if order.size else 0
    prefix = order[:cut]
    ref_program = SpliDTDataPlane(splidt_model, splidt_rules, flow_slots=table_size)
    ref_engine = StreamingEngine(ref_program)
    ref_engine.open()
    ref_engine.ingest(PacketChunk(soa=soa, flows=dataset.flows, positions=prefix))
    ref_engine.drain()
    truncated_oracle = ref_engine.close()
    truncated_served = _stream_mp_ring(
        splidt_model, splidt_rules, dataset, table_size, prefix,
        random.Random(seed + 3),
    )
    _assert_identical(truncated_oracle, truncated_served)


def test_parity_fuzz_random_burst(splidt_model, splidt_rules):
    """A short randomized burst; seeds are printed so failures reproduce.

    ``PARITY_FUZZ_SEED`` pins the base seed, ``PARITY_FUZZ_CASES`` scales the
    burst (CI runs a fixed seed plus a small burst; set it higher for a soak).
    Every other case runs under a random eviction policy.
    """
    cases = int(os.environ.get("PARITY_FUZZ_CASES", "3"))
    base_env = os.environ.get("PARITY_FUZZ_SEED")
    base = int(base_env) if base_env else random.SystemRandom().randint(0, 2**31)
    seeds = [base + offset for offset in range(cases)]
    print(f"\nparity-fuzz random burst: seeds={seeds}")
    for seed in seeds:
        eviction = (
            _random_eviction_policy(random.Random(seed ^ 0xE51C7))
            if seed % 2 == 0 else None
        )
        _fuzz_one(seed, splidt_model, splidt_rules,
                  truncated=seed % 3 == 0, eviction=eviction)


def test_eviction_resolves_undecided(splidt_model, splidt_rules):
    """An evicted flow loses its state and ends undecided, bit-exactly.

    Flow 0 has fewer packets than partitions (it can never decide) and idles;
    flow 1 collides into the same slot long after the idle timeout, so flow 0
    is evicted.  All engines must agree that flow 0 has no verdict and that
    exactly one eviction (of flow 0) happened.
    """
    tuple_a = FiveTuple(src_ip=1, dst_ip=2, src_port=3, dst_port=4, protocol=6)
    # Force a slot collision on a table of one slot.
    tuple_b = FiveTuple(src_ip=9, dst_ip=8, src_port=7, dst_port=6, protocol=17)
    flows = [
        Flow(five_tuple=tuple_a,
             packets=[Packet(timestamp=0.0, size=100, flags=0x10)],
             label=0, class_name="", flow_id=0),
        Flow(five_tuple=tuple_b,
             packets=[Packet(timestamp=10.0 + 0.01 * i, size=200) for i in range(8)],
             label=1, class_name="", flow_id=1),
    ]
    policy = make_eviction_policy("idle-timeout", timeout=1.0)
    mismatch = _run_engines(splidt_model, splidt_rules, flows, 1,
                            random.Random(0), policy)
    assert mismatch is None, mismatch

    program = SpliDTDataPlane(splidt_model, splidt_rules, flow_slots=1,
                              eviction=policy)
    result = replay_dataset(program, _dataset(flows), engine="fused")
    stats = program.eviction_stats()
    assert 0 not in result.verdicts
    assert 1 in result.verdicts
    assert stats["evictions"] == 1
    assert stats["evicted_flows"] == [0]


def test_duplicate_five_tuple_goes_scalar(splidt_model, splidt_rules):
    """Two same-tuple flows in one slot must reproduce reference dedup exactly.

    The reference engine treats the second flow's packets as a continuation
    of the (decided) first flow and never emits a verdict for it; the batched
    plane can only reproduce that by sending the whole slot scalar.
    """
    tuple_ = FiveTuple(src_ip=1, dst_ip=2, src_port=3, dst_port=4, protocol=6)

    def burst(start: float, flow_id: int) -> Flow:
        packets = [
            Packet(timestamp=start + 0.1 * i, size=100 + i, flags=0x10,
                   direction=1, payload=60)
            for i in range(6)
        ]
        return Flow(five_tuple=tuple_, packets=packets, label=flow_id % 2,
                    class_name="", flow_id=flow_id)

    flows = [burst(0.0, 0), burst(100.0, 1)]  # disjoint in time, same tuple
    mismatch = _run_engines(splidt_model, splidt_rules, flows, 64, random.Random(0))
    assert mismatch is None, mismatch

    # And the reference semantics themselves: the second flow has no verdict.
    program = SpliDTDataPlane(splidt_model, splidt_rules, flow_slots=64)
    result = replay_dataset(program, _dataset(flows), engine="fused")
    assert 1 not in result.verdicts
