"""Artifact save/load: replay a saved run without retraining, bit-identical."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.pipeline import Experiment, ExperimentSpec, SpecError
from repro.pipeline.artifacts import (
    MODEL_FILE,
    RESULT_FILE,
    RULES_FILE,
    SPEC_FILE,
    load_result_summary,
    load_run,
    save_run,
)

SPEC = ExperimentSpec(
    dataset="D3",
    n_flows=140,
    seed=4,
    depth=6,
    features_per_subtree=3,
    partition_sizes=(2, 2, 2),
    replay_flows=100,
)


@pytest.fixture(scope="module")
def saved_run(tmp_path_factory):
    """A fully reported experiment saved to a run directory."""
    experiment = Experiment(SPEC)
    experiment.run()
    run_dir = tmp_path_factory.mktemp("runs") / "exp1"
    save_run(experiment, run_dir)
    return experiment, run_dir


class TestSaveRun:
    def test_run_directory_layout(self, saved_run):
        _, run_dir = saved_run
        assert (run_dir / SPEC_FILE).is_file()
        assert (run_dir / MODEL_FILE).is_file()
        assert (run_dir / RULES_FILE).is_file()
        assert (run_dir / RESULT_FILE).is_file()

    def test_spec_json_is_the_spec(self, saved_run):
        _, run_dir = saved_run
        data = json.loads((run_dir / SPEC_FILE).read_text())
        assert ExperimentSpec.from_dict(data) == SPEC

    def test_result_summary_readable(self, saved_run):
        experiment, run_dir = saved_run
        summary = load_result_summary(run_dir)
        assert summary["replay_f1"] == experiment.run().replay_report.f1_score

    def test_save_without_report_skips_result_json(self, tmp_path):
        experiment = Experiment(SPEC)
        experiment.compile()  # train + compile only
        run_dir = save_run(experiment, tmp_path / "train-only")
        assert (run_dir / MODEL_FILE).is_file()
        assert not (run_dir / RESULT_FILE).is_file()
        assert load_result_summary(run_dir) is None


class TestLoadRun:
    def test_restores_train_and_compile(self, saved_run):
        _, run_dir = saved_run
        loaded = load_run(run_dir)
        assert loaded.restored_stages == ("train", "compile")
        assert loaded.stage_ran("train") and loaded.stage_ran("compile")
        assert not loaded.stage_ran("replay")

    def test_replay_without_retraining_is_bit_identical(self, saved_run):
        experiment, run_dir = saved_run
        loaded = load_run(run_dir)
        replayed = loaded.replay()
        original = experiment.replay()
        assert set(replayed.verdicts) == set(original.verdicts)
        for fid, verdict in original.verdicts.items():
            assert replayed.verdicts[fid].label == verdict.label
            assert replayed.verdicts[fid].decided_at == verdict.decided_at
            assert replayed.verdicts[fid].n_recirculations == verdict.n_recirculations
        np.testing.assert_array_equal(
            replayed.time_to_detection(), original.time_to_detection()
        )
        assert replayed.recirculation == original.recirculation
        # The training stage was satisfied from disk, not recomputed.
        assert loaded.timings["train"] == 0.0

    def test_loaded_model_structure_matches(self, saved_run):
        experiment, run_dir = saved_run
        loaded = load_run(run_dir)
        assert loaded.train().n_subtrees == experiment.train().n_subtrees
        assert loaded.compile().n_entries == experiment.compile().n_entries

    def test_load_rejects_non_run_directory(self, tmp_path):
        with pytest.raises(SpecError, match="run directory"):
            load_run(tmp_path)
