"""CLI smoke tests: ``python -m repro`` end to end via subprocess."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Arguments that keep the subprocess experiments fast.
FAST_RUN = ["--dataset", "D3", "--n-flows", "140", "--seed", "4",
            "--depth", "6", "--k", "3", "--partitions", "3",
            "--replay-flows", "80"]


def run_cli(*args: str, expect_code: int = 0) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_ROOT / "src")] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    process = subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
        timeout=600,
    )
    assert process.returncode == expect_code, (
        f"exit {process.returncode} != {expect_code}\n"
        f"stdout:\n{process.stdout}\nstderr:\n{process.stderr}"
    )
    return process


def test_list_datasets():
    process = run_cli("list-datasets")
    for key in ("D1", "D7", "splidt", "netbeacon", "vpn-detection"):
        assert key in process.stdout


def test_run_smoke(tmp_path):
    out_dir = tmp_path / "run"
    process = run_cli("run", *FAST_RUN, "--out", str(out_dir))
    assert "data-plane F1" in process.stdout
    assert "TTD median" in process.stdout
    assert (out_dir / "spec.json").is_file()
    assert (out_dir / "model.pkl").is_file()
    summary = json.loads((out_dir / "result.json").read_text())
    assert summary["replayed"] is True


def test_replay_saved_run_matches(tmp_path):
    out_dir = tmp_path / "run"
    first = run_cli("run", *FAST_RUN, "--out", str(out_dir))
    second = run_cli("replay", str(out_dir))
    assert "restored stages: train, compile" in second.stdout

    def dataplane_f1(stdout: str) -> str:
        (line,) = [l for l in stdout.splitlines() if l.startswith("data-plane F1")]
        return line

    assert dataplane_f1(first.stdout) == dataplane_f1(second.stdout)


def test_lookup_knob_scan_vs_lut_identical(tmp_path):
    """`--lookup scan` and `--lookup lut` must report identical replays."""
    out_scan = run_cli("run", *FAST_RUN, "--lookup", "scan",
                       "--out", str(tmp_path / "scan"))
    out_lut = run_cli("run", *FAST_RUN, "--lookup", "lut",
                      "--out", str(tmp_path / "lut"))
    assert "scan lookup" in out_scan.stdout
    assert "lut lookup" in out_lut.stdout

    def replay_fields(path):
        summary = json.loads((path / "result.json").read_text())
        return (summary["replay_f1"], summary["replay_flows"], summary["ttd"],
                summary["recirculation"])

    assert replay_fields(tmp_path / "scan") == replay_fields(tmp_path / "lut")
    # The saved artifact replays under the opposite lookup mode, too.
    override = run_cli("replay", str(tmp_path / "lut"), "--lookup", "scan")
    assert "scan lookup" in override.stdout


def test_run_rejects_bad_spec():
    process = run_cli("run", "--dataset", "D3", "--n-flows", "5", expect_code=2)
    assert "n_flows" in process.stderr


def test_run_unknown_dataset_rejected_by_argparse():
    process = run_cli("run", "--dataset", "D99", expect_code=2)
    assert "invalid choice" in process.stderr


def test_compare_smoke():
    process = run_cli(
        "compare", "--dataset", "D3", "--n-flows", "140", "--seed", "4",
        "--replay-flows", "60", "--systems", "splidt,per_packet",
    )
    assert "splidt" in process.stdout
    assert "per_packet" in process.stdout


def test_compare_json_rows():
    process = run_cli(
        "compare", "--dataset", "D3", "--n-flows", "140", "--seed", "4",
        "--replay-flows", "60", "--systems", "splidt,per_packet", "--json",
    )
    payload = json.loads(process.stdout)
    assert payload["dataset"] == "D3" and payload["n_flows"] == 140
    rows = {row["system"]: row for row in payload["rows"]}
    assert set(rows) == {"splidt", "per_packet"}
    splidt = rows["splidt"]
    assert splidt["error"] is None
    assert 0.0 <= splidt["offline_f1"] <= 1.0
    assert splidt["replay_f1"] is not None and splidt["ttd_median_s"] > 0
    assert rows["per_packet"]["replay_f1"] is None  # no data-plane program


def test_serve_smoke():
    process = run_cli(
        "serve", *FAST_RUN, "--serve-engine", "sharded", "--shards", "2",
        "--chunk-size", "64", "--progress-every", "16", "--digests",
    )
    assert "sharded engine, 2 thread shards" in process.stdout
    assert "stream complete" in process.stdout
    assert "digest  flow" in process.stdout
    (decided_line,) = [line for line in process.stdout.splitlines()
                       if line.startswith("flows decided")]
    assert "/80" in decided_line and "data-plane F1" in decided_line


def test_serve_matches_replay_f1():
    served = run_cli("serve", *FAST_RUN, "--serve-engine", "microbatch",
                     "--progress-every", "0")
    replayed = run_cli("run", *FAST_RUN, "--engine", "reference")

    def f1(stdout: str, prefix: str) -> str:
        (line,) = [l for l in stdout.splitlines() if l.startswith(prefix)]
        return line.rstrip(")").split()[-1]

    assert f1(served.stdout, "flows decided") == f1(replayed.stdout, "data-plane F1")


def test_serve_rejects_systems_without_programs():
    process = run_cli("serve", *FAST_RUN, "--system", "per_packet", expect_code=2)
    assert "no data-plane program" in process.stderr


def test_serve_sharded_mp_smoke():
    process = run_cli(
        "serve", *FAST_RUN, "--serve-engine", "sharded-mp", "--workers", "2",
        "--chunk-size", "64", "--progress-every", "0",
    )
    assert "sharded-mp engine, 2 worker processes" in process.stdout
    assert "stream complete" in process.stdout
    (decided_line,) = [line for line in process.stdout.splitlines()
                       if line.startswith("flows decided")]
    assert "/80" in decided_line and "data-plane F1" in decided_line
