"""Experiment facade: stage caching, parity with the hand-chained path."""

from __future__ import annotations

import numpy as np
import pytest

from repro import core, datasets
from repro.dataplane import SpliDTDataPlane, replay_dataset
from repro.pipeline import Experiment, ExperimentSpec
from repro.pipeline.experiment import STAGES
from repro.switch.targets import TOFINO1

#: Small-but-real spec shared by the module's experiments.
SPEC = ExperimentSpec(
    dataset="D3",
    n_flows=160,
    seed=11,
    depth=6,
    features_per_subtree=4,
    partition_sizes=(2, 2, 2),
    replay_flows=120,
)


@pytest.fixture(scope="module")
def experiment() -> Experiment:
    exp = Experiment(SPEC)
    exp.run()
    return exp


class TestStageCaching:
    def test_all_stages_ran(self, experiment):
        assert all(experiment.stage_ran(stage) for stage in STAGES)

    def test_stages_cached_train_once_replay_twice(self):
        exp = Experiment(SPEC)
        first = exp.replay()
        model = exp.train()
        second = exp.replay()
        # Same objects: nothing re-ran.
        assert first is second
        assert exp.train() is model

    def test_replay_result_stable_across_report(self, experiment):
        assert experiment.report().replay_result is experiment.replay()

    def test_invalidate_drops_downstream_only(self, experiment):
        exp = Experiment(SPEC)
        exp.run()
        model = exp.train()
        exp.invalidate("deploy")
        assert exp.train() is model
        assert not exp.stage_ran("deploy")
        assert not exp.stage_ran("replay")
        assert not exp.stage_ran("report")
        # Re-running reproduces identical replay verdicts.
        verdicts = {fid: v.label for fid, v in exp.replay().verdicts.items()}
        reference = {fid: v.label for fid, v in experiment.replay().verdicts.items()}
        assert verdicts == reference

    def test_invalidate_unknown_stage_raises(self, experiment):
        with pytest.raises(ValueError):
            experiment.invalidate("cool-down")

    def test_timings_cover_executed_stages(self, experiment):
        for stage in ("prepare", "train", "compile", "deploy", "replay"):
            assert experiment.timings[stage] >= 0.0
        assert experiment.run().timings.keys() >= {"prepare", "train", "replay"}


class TestResultBundle:
    def test_result_shape(self, experiment):
        result = experiment.run()
        assert result.spec == SPEC
        assert 0.0 <= result.offline_report.f1_score <= 1.0
        assert result.replay_result is not None
        assert len(result.replay_result.verdicts) <= 120
        assert set(result.ttd) == {"median", "mean", "p90", "p99", "max"}
        assert result.recirculation["packets"] >= 0
        assert result.resources is not None and result.resources.max_flows > 0
        assert result.feasibility is not None
        assert result.model_summary["system"] == "splidt"
        assert result.model_summary["n_subtrees"] >= 1

    def test_summary_is_json_compatible(self, experiment):
        import json

        summary = json.loads(json.dumps(experiment.run().summary(), default=float))
        assert summary["spec"]["dataset"] == "D3"
        assert summary["replayed"] is True
        assert summary["replay_flows"] == len(experiment.replay().verdicts)


class TestParityWithHandChainedPath:
    """The acceptance criterion: pipeline == the ~8 loose calls, exactly."""

    @pytest.fixture(scope="class")
    def hand_chained(self):
        spec = SPEC
        dataset = datasets.load_dataset(spec.dataset, n_flows=spec.n_flows, seed=spec.seed)
        store = datasets.DatasetStore(
            dataset, test_size=spec.test_size, random_state=spec.seed
        )
        config = core.SpliDTConfig(
            depth=spec.depth,
            features_per_subtree=spec.features_per_subtree,
            partition_sizes=spec.partition_sizes,
        )
        windowed = store.fetch(config.n_partitions)
        model = core.train_partitioned_tree(windowed, config, random_state=spec.seed)
        offline = core.evaluate_partitioned_tree(model, windowed)
        rules = core.generate_rules(
            model, core.stacked_training_matrix(windowed, config.n_partitions)
        )
        program = SpliDTDataPlane(
            model, rules, target=TOFINO1, flow_slots=spec.flow_slots
        )
        replay = replay_dataset(
            program,
            dataset,
            max_flows=spec.replay_flows,
            engine=spec.resolved_engine(),
        )
        return offline, rules, replay

    def test_offline_f1_matches(self, experiment, hand_chained):
        offline, _, _ = hand_chained
        assert experiment.run().offline_report.f1_score == offline.f1_score

    def test_rules_match(self, experiment, hand_chained):
        _, rules, _ = hand_chained
        assert experiment.compile().n_entries == rules.n_entries

    def test_replay_f1_matches(self, experiment, hand_chained):
        _, _, replay = hand_chained
        assert experiment.run().replay_report.f1_score == replay.report.f1_score

    def test_verdicts_match_exactly(self, experiment, hand_chained):
        _, _, replay = hand_chained
        ours = experiment.replay().verdicts
        assert set(ours) == set(replay.verdicts)
        for fid, verdict in replay.verdicts.items():
            assert ours[fid].label == verdict.label
            assert ours[fid].decided_at == verdict.decided_at
            assert ours[fid].n_recirculations == verdict.n_recirculations

    def test_ttd_matches_bitwise(self, experiment, hand_chained):
        _, _, replay = hand_chained
        np.testing.assert_array_equal(
            experiment.replay().time_to_detection(), replay.time_to_detection()
        )

    def test_recirculation_matches(self, experiment, hand_chained):
        _, _, replay = hand_chained
        assert experiment.replay().recirculation == replay.recirculation


class TestBaselineSystems:
    def test_netbeacon_runs_through_same_interface(self):
        spec = SPEC.replace(system="netbeacon", replay_flows=60)
        result = Experiment(spec).run()
        assert result.replay_result is not None
        assert 0.0 <= result.replay_report.f1_score <= 1.0
        assert result.feasibility.feasible
        assert result.model_summary["system"] == "netbeacon"

    def test_pforest_skips_replay(self):
        result = Experiment(SPEC.replace(system="pforest", n_trees=3)).run()
        assert result.replay_result is None
        assert result.ttd == {}
        assert 0.0 <= result.offline_report.f1_score <= 1.0

    def test_engine_override_same_verdicts(self):
        reference = Experiment(SPEC.replace(replay_engine="reference", replay_flows=40))
        vectorized = Experiment(SPEC.replace(replay_engine="vectorized", replay_flows=40))
        ref_verdicts = reference.replay().verdicts
        vec_verdicts = vectorized.replay().verdicts
        assert {f: v.label for f, v in ref_verdicts.items()} == {
            f: v.label for f, v in vec_verdicts.items()
        }
