"""ExperimentSpec validation, resolution and serialisation."""

from __future__ import annotations

import pytest

from repro.core.config import SpliDTConfig
from repro.online import OnlineConfig
from repro.pipeline import ExperimentSpec, ServeConfig, SpecError, default_replay_engine
from repro.pipeline.spec import REPLAY_ENGINE_ENV
from repro.switch.targets import TOFINO2


class TestValidation:
    def test_default_spec_is_valid(self):
        assert ExperimentSpec().validate() is not None

    @pytest.mark.parametrize(
        "overrides",
        [
            {"dataset": "D99"},
            {"system": "no-such-system"},
            {"n_flows": 5},
            {"target": "tofino9"},
            {"replay_engine": "turbo"},
            {"lookup": "hash"},
            {"replay_flows": 0},
            {"flow_slots": 0},
            {"test_size": 0.0},
            {"test_size": 1.5},
            {"n_trees": 0},
            {"depth": 0},
            {"bit_width": 12},
            # partition sizes must sum to the depth
            {"depth": 9, "partition_sizes": (3, 3)},
            # more partitions than depth levels
            {"depth": 2, "n_partitions": 3},
            {"serve": ServeConfig(engine="warp")},
            {"serve": ServeConfig(shards=0)},
            {"serve": ServeConfig(chunk_size=0)},
            {"serve": ServeConfig(chunk_size=512, backpressure=256)},
        ],
    )
    def test_invalid_specs_raise(self, overrides):
        with pytest.raises(SpecError):
            ExperimentSpec(**{**{"dataset": "D3"}, **overrides}).validate()

    def test_spec_error_is_value_error(self):
        with pytest.raises(ValueError):
            ExperimentSpec(dataset="bogus").validate()

    def test_error_message_names_the_problem(self):
        with pytest.raises(SpecError, match="dataset"):
            ExperimentSpec(dataset="bogus").validate()
        with pytest.raises(SpecError, match="system"):
            ExperimentSpec(system="bogus").validate()


class TestResolution:
    def test_model_config_uniform_split(self):
        spec = ExperimentSpec(depth=9, features_per_subtree=4, n_partitions=3)
        assert spec.model_config() == SpliDTConfig(
            depth=9, features_per_subtree=4, partition_sizes=(3, 3, 3)
        )

    def test_explicit_partition_sizes_win(self):
        spec = ExperimentSpec(depth=9, partition_sizes=(5, 3, 1))
        assert spec.model_config().partition_sizes == (5, 3, 1)

    def test_partition_sizes_coerced_to_tuple(self):
        spec = ExperimentSpec(depth=9, partition_sizes=[5, 3, 1])
        assert spec.partition_sizes == (5, 3, 1)

    def test_target_spec_lookup(self):
        assert ExperimentSpec(target="Tofino2").target_spec() is TOFINO2

    def test_engine_spec_field_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(REPLAY_ENGINE_ENV, "reference")
        assert ExperimentSpec(replay_engine="vectorized").resolved_engine() == "vectorized"

    def test_engine_env_fallback(self, monkeypatch):
        monkeypatch.setenv(REPLAY_ENGINE_ENV, "reference")
        assert ExperimentSpec().resolved_engine() == "reference"
        assert default_replay_engine() == "reference"

    def test_engine_default_without_env(self, monkeypatch):
        monkeypatch.delenv(REPLAY_ENGINE_ENV, raising=False)
        assert ExperimentSpec().resolved_engine() == "vectorized"

    def test_bad_env_engine_raises(self, monkeypatch):
        monkeypatch.setenv(REPLAY_ENGINE_ENV, "warp")
        with pytest.raises(SpecError, match="warp"):
            ExperimentSpec().resolved_engine()

    def test_topk_config_for_baselines(self):
        spec = ExperimentSpec(system="netbeacon", depth=8, features_per_subtree=3)
        config = spec.topk_config()
        assert (config.depth, config.top_k, config.use_stateful) == (8, 3, True)
        assert not ExperimentSpec(system="per_packet").topk_config().use_stateful


class TestSerialisation:
    def test_roundtrip(self):
        spec = ExperimentSpec(dataset="D6", n_flows=300, seed=5,
                              partition_sizes=(4, 3, 2), replay_engine="reference")
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec

    def test_to_dict_is_json_compatible(self):
        import json

        payload = json.dumps(ExperimentSpec(partition_sizes=(3, 3, 3)).to_dict())
        assert ExperimentSpec.from_dict(json.loads(payload)).partition_sizes == (3, 3, 3)

    def test_unknown_keys_rejected(self):
        with pytest.raises(SpecError, match="mystery"):
            ExperimentSpec.from_dict({"dataset": "D3", "mystery": 1})

    def test_replace_returns_new_spec(self):
        spec = ExperimentSpec(dataset="D3")
        other = spec.replace(dataset="D6", seed=9)
        assert (other.dataset, other.seed) == ("D6", 9)
        assert spec.dataset == "D3"

    def test_lookup_defaults_to_lut_and_roundtrips(self):
        assert ExperimentSpec().lookup == "lut"
        spec = ExperimentSpec(lookup="scan")
        assert ExperimentSpec.from_dict(spec.to_dict()).lookup == "scan"
        # Specs saved before the lookup knob existed load with the default.
        legacy = ExperimentSpec().to_dict()
        del legacy["lookup"]
        assert ExperimentSpec.from_dict(legacy).lookup == "lut"


class TestServeConfig:
    def test_default_spec_carries_serve_config(self):
        spec = ExperimentSpec().validate()
        assert spec.serve == ServeConfig()
        assert spec.serve.engine == "microbatch"

    def test_serve_roundtrips_as_nested_dict(self):
        import json

        spec = ExperimentSpec(
            serve=ServeConfig(engine="sharded", shards=4, chunk_size=128,
                              backpressure=4096)
        )
        payload = json.loads(json.dumps(spec.to_dict()))
        assert payload["serve"] == {
            "engine": "sharded", "shards": 4, "workers": 4,
            "spawn_method": None, "transport": None, "ring_slots": 64,
            "chunk_size": 128, "backpressure": 4096,
            "online": {
                "enabled": False, "detector": "page-hinkley", "window": 64,
                "ph_delta": 0.15, "ph_threshold": 5.0,
                "error_threshold": 0.35, "warmup_flows": 32,
                "min_retrain_flows": 96, "retrain_window": 512,
                "retrain_passes": 2, "cooldown_flows": 32,
                "exit_confidence": 0.95,
            },
        }
        restored = ExperimentSpec.from_dict(payload)
        assert restored == spec
        assert isinstance(restored.serve, ServeConfig)

    def test_sharded_mp_serve_roundtrip(self):
        import json

        spec = ExperimentSpec(
            serve=ServeConfig(engine="sharded-mp", workers=6, spawn_method="spawn")
        ).validate()
        payload = json.loads(json.dumps(spec.to_dict()))
        assert payload["serve"]["engine"] == "sharded-mp"
        assert payload["serve"]["workers"] == 6
        assert payload["serve"]["spawn_method"] == "spawn"
        restored = ExperimentSpec.from_dict(payload)
        assert restored == spec and restored.serve.workers == 6

    def test_serve_mp_validation(self):
        with pytest.raises(SpecError, match="workers"):
            ExperimentSpec(serve=ServeConfig(engine="sharded-mp", workers=0)).validate()
        with pytest.raises(SpecError, match="spawn_method"):
            ExperimentSpec(serve=ServeConfig(spawn_method="warp")).validate()
        with pytest.raises(SpecError, match="transport"):
            ExperimentSpec(serve=ServeConfig(transport="warp")).validate()
        with pytest.raises(SpecError, match="ring_slots"):
            ExperimentSpec(serve=ServeConfig(ring_slots=0)).validate()

    def test_serve_transport_roundtrip(self):
        import json

        spec = ExperimentSpec(
            serve=ServeConfig(engine="sharded-mp", transport="ring", ring_slots=8)
        ).validate()
        payload = json.loads(json.dumps(spec.to_dict()))
        assert payload["serve"]["transport"] == "ring"
        assert payload["serve"]["ring_slots"] == 8
        restored = ExperimentSpec.from_dict(payload)
        assert restored == spec and restored.serve.transport == "ring"

    def test_serve_dict_coerced_at_construction(self):
        spec = ExperimentSpec(serve={"engine": "streaming", "chunk_size": 32})
        assert spec.serve == ServeConfig(engine="streaming", chunk_size=32)

    def test_unknown_serve_keys_rejected(self):
        with pytest.raises(SpecError, match="serve"):
            ExperimentSpec.from_dict({"serve": {"engine": "microbatch", "warp": 9}})

    def test_serve_replace(self):
        config = ServeConfig()
        assert config.replace(shards=8).shards == 8
        assert config.shards == 2


class TestOnlineConfigInSpec:
    def test_default_serve_carries_disabled_online(self):
        spec = ExperimentSpec().validate()
        assert isinstance(spec.serve.online, OnlineConfig)
        assert not spec.serve.online.enabled

    def test_online_roundtrips_through_json(self):
        import json

        spec = ExperimentSpec(
            serve=ServeConfig(
                online=OnlineConfig(enabled=True, detector="error-window",
                                    window=32, min_retrain_flows=48,
                                    retrain_window=64)
            )
        ).validate()
        payload = json.loads(json.dumps(spec.to_dict()))
        assert payload["serve"]["online"]["enabled"] is True
        assert payload["serve"]["online"]["detector"] == "error-window"
        restored = ExperimentSpec.from_dict(payload)
        assert restored == spec
        assert isinstance(restored.serve.online, OnlineConfig)
        assert restored.serve.online.window == 32

    def test_online_dict_coerced_at_construction(self):
        spec = ExperimentSpec(
            serve={"engine": "microbatch",
                   "online": {"enabled": True, "window": 16}}
        )
        assert spec.serve.online == OnlineConfig(enabled=True, window=16)

    def test_unknown_online_keys_rejected(self):
        with pytest.raises(SpecError, match="online"):
            ExperimentSpec.from_dict(
                {"serve": {"online": {"enabled": True, "warp": 9}}}
            )

    def test_invalid_online_config_fails_spec_validation(self):
        with pytest.raises(SpecError, match="online"):
            ExperimentSpec(
                serve=ServeConfig(online=OnlineConfig(detector="bogus"))
            ).validate()
        with pytest.raises(SpecError, match="online"):
            ExperimentSpec(
                serve=ServeConfig(online=OnlineConfig(min_retrain_flows=0))
            ).validate()


class TestDseConfig:
    def test_default_spec_carries_dse_config(self):
        from repro.pipeline import DseConfig

        spec = ExperimentSpec().validate()
        assert spec.dse == DseConfig()
        assert spec.dse.method == "bayesian"
        assert spec.dse.workers is None  # resolve from SPLIDT_DSE_WORKERS

    def test_dse_roundtrips_as_nested_dict(self):
        import json

        from repro.pipeline import DseConfig

        spec = ExperimentSpec(
            dse=DseConfig(iterations=8, batch_size=2, method="random",
                          workers=4, affinity=True, depth_range=(2, 8))
        )
        payload = json.loads(json.dumps(spec.to_dict()))
        assert payload["dse"] == {
            "iterations": 8, "batch_size": 2, "method": "random",
            "workers": 4, "affinity": True, "depth_range": [2, 8],
            "k_range": [1, 6], "partitions_range": [1, 5],
        }
        restored = ExperimentSpec.from_dict(payload)
        assert restored == spec
        assert isinstance(restored.dse, DseConfig)
        assert restored.dse.depth_range == (2, 8)

    def test_dse_dict_coerced_at_construction(self):
        from repro.pipeline import DseConfig

        spec = ExperimentSpec(dse={"iterations": 6, "workers": 2})
        assert isinstance(spec.dse, DseConfig)
        assert spec.dse.workers == 2

    def test_unknown_dse_keys_rejected(self):
        payload = ExperimentSpec().to_dict()
        payload["dse"]["pool_size"] = 8
        with pytest.raises(SpecError, match="pool_size"):
            ExperimentSpec.from_dict(payload)

    @pytest.mark.parametrize(
        "overrides",
        [
            {"iterations": 0},
            {"batch_size": 0},
            {"method": "grid"},
            {"workers": -1},
            {"depth_range": (8, 2)},
            {"partitions_range": (0, 3)},
        ],
    )
    def test_invalid_dse_configs_raise(self, overrides):
        from repro.pipeline import DseConfig

        with pytest.raises(SpecError):
            ExperimentSpec(dse=DseConfig(**overrides)).validate()
