"""System/scenario registry behaviour."""

from __future__ import annotations

import pytest

from repro.pipeline import (
    ExperimentSpec,
    SpecError,
    available_scenarios,
    available_systems,
    get_scenario,
    get_system,
    register_scenario,
    register_system,
)
from repro.pipeline.systems import SCENARIOS, SYSTEMS, System


def test_builtin_systems_registered():
    assert {"splidt", "netbeacon", "leo", "per_packet", "topk", "pforest"} <= set(
        available_systems()
    )


def test_builtin_scenarios_registered():
    assert {"quickstart", "vpn-detection", "iot-intrusion"} <= set(available_scenarios())
    for name in available_scenarios():
        get_scenario(name).validate()


def test_get_system_unknown_raises():
    with pytest.raises(SpecError, match="unknown system"):
        get_system("quantum-tree")


def test_get_scenario_unknown_raises():
    with pytest.raises(SpecError, match="unknown scenario"):
        get_scenario("no-such-scenario")


def test_register_custom_system_reachable_from_spec():
    class EchoSystem(System):
        name = "echo-test"
        supports_replay = False

        def train(self, spec, windowed):
            return "trained"

        def offline_report(self, model, windowed, spec):
            raise NotImplementedError

    register_system(EchoSystem())
    try:
        assert get_system("echo-test").train(None, None) == "trained"
        ExperimentSpec(system="echo-test", depth=6, n_partitions=3).validate()
    finally:
        SYSTEMS.pop("echo-test")


def test_register_unnamed_system_rejected():
    with pytest.raises(ValueError):
        register_system(System())


def test_register_custom_scenario():
    register_scenario("tmp-scenario", ExperimentSpec(dataset="D1"))
    try:
        assert get_scenario("tmp-scenario").dataset == "D1"
    finally:
        SCENARIOS.pop("tmp-scenario")
