"""System/scenario registry behaviour."""

from __future__ import annotations

import pytest

from repro.pipeline import (
    ExperimentSpec,
    SpecError,
    available_scenarios,
    available_systems,
    get_scenario,
    get_system,
    register_scenario,
    register_system,
)
from repro.pipeline.systems import SCENARIOS, SYSTEMS, System


def test_builtin_systems_registered():
    assert {"splidt", "netbeacon", "leo", "per_packet", "topk", "pforest"} <= set(
        available_systems()
    )


def test_builtin_scenarios_registered():
    assert {"quickstart", "vpn-detection", "iot-intrusion"} <= set(available_scenarios())
    for name in available_scenarios():
        get_scenario(name).validate()


def test_get_system_unknown_raises():
    with pytest.raises(SpecError, match="unknown system"):
        get_system("quantum-tree")


def test_get_scenario_unknown_raises():
    with pytest.raises(SpecError, match="unknown scenario"):
        get_scenario("no-such-scenario")


def test_register_custom_system_reachable_from_spec():
    class EchoSystem(System):
        name = "echo-test"
        supports_replay = False

        def train(self, spec, windowed):
            return "trained"

        def offline_report(self, model, windowed, spec):
            raise NotImplementedError

    register_system(EchoSystem())
    try:
        assert get_system("echo-test").train(None, None) == "trained"
        ExperimentSpec(system="echo-test", depth=6, n_partitions=3).validate()
    finally:
        SYSTEMS.pop("echo-test")


def test_register_unnamed_system_rejected():
    with pytest.raises(ValueError):
        register_system(System())


def test_register_custom_scenario():
    register_scenario("tmp-scenario", ExperimentSpec(dataset="D1"))
    try:
        assert get_scenario("tmp-scenario").dataset == "D1"
    finally:
        SCENARIOS.pop("tmp-scenario")


class _ProbeSystem(System):
    """Module-level so ProgramFactory pickling can resolve it by reference."""

    name = "probe-test"
    supports_replay = True

    def build_program(self, model, rules, spec):
        return ("program", model, rules)


def test_program_factory_uses_the_exact_instance_in_process():
    # An UNREGISTERED adapter must keep working in-process, exactly as the
    # old closure-based factory did (thread-sharded serving path).
    system = _ProbeSystem()
    factory = system.program_factory("m", None, ExperimentSpec())
    assert factory() == ("program", "m", None)
    assert factory.system is system


def test_program_factory_pickles_registered_systems_by_name():
    import pickle

    system = _ProbeSystem()
    register_system(system)
    try:
        factory = system.program_factory("m", None, ExperimentSpec())
        restored = pickle.loads(pickle.dumps(factory))
        # Re-resolved through the registry: same adapter, not a copy.
        assert restored.system is system
        assert restored() == ("program", "m", None)
    finally:
        SYSTEMS.pop("probe-test")


def test_program_factory_pickles_unregistered_systems_directly():
    import pickle

    system = _ProbeSystem()  # never registered
    factory = system.program_factory("m", None, ExperimentSpec())
    restored = pickle.loads(pickle.dumps(factory))
    assert restored.system is not system  # carried by value
    assert restored() == ("program", "m", None)


def test_splidt_program_factory_roundtrip_builds_fresh_programs():
    import pickle

    from repro.pipeline import Experiment

    experiment = Experiment(ExperimentSpec(dataset="D3", n_flows=60, depth=4,
                                           features_per_subtree=2, n_partitions=2))
    factory = experiment.system.program_factory(
        experiment.train(), experiment.compile(), experiment.spec
    )
    restored = pickle.loads(pickle.dumps(factory))
    assert restored.system is get_system("splidt")
    program = restored()
    assert program is not restored()  # fresh program per call
