"""Property-based tests (hypothesis) on core data structures and invariants."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.pareto import dominates, pareto_front_indices
from repro.core.range_marking import MarkTable
from repro.features.window import window_boundaries
from repro.ml import DecisionTreeClassifier
from repro.ml.metrics import accuracy_score, f1_score
from repro.switch.tcam import range_to_ternary


# ----------------------------------------------------------------------
# Window segmentation
# ----------------------------------------------------------------------
@given(n_packets=st.integers(0, 5000), n_windows=st.integers(1, 16))
def test_window_boundaries_partition_the_flow(n_packets, n_windows):
    boundaries = window_boundaries(n_packets, n_windows)
    assert len(boundaries) == n_windows
    assert boundaries[-1] == n_packets
    assert all(0 <= a <= b <= n_packets for a, b in zip(boundaries, boundaries[1:]))
    sizes = [boundaries[0]] + [b - a for a, b in zip(boundaries, boundaries[1:])]
    assert max(sizes) - min(sizes) <= 1  # uniform windows


# ----------------------------------------------------------------------
# Range-to-ternary prefix expansion
# ----------------------------------------------------------------------
@given(
    width=st.integers(1, 10),
    bounds=st.tuples(st.integers(0, 1023), st.integers(0, 1023)),
)
@settings(max_examples=200)
def test_range_to_ternary_covers_exactly_the_range(width, bounds):
    low, high = min(bounds), max(bounds)
    max_value = (1 << width) - 1
    low, high = min(low, max_value), min(high, max_value)
    matches = range_to_ternary(low, high, width)
    covered = {v for v in range(max_value + 1) if any(m.matches(v) for m in matches)}
    assert covered == set(range(low, high + 1))
    # Classic bound on prefix expansion size.
    assert len(matches) <= max(2 * width - 2, 1)


# ----------------------------------------------------------------------
# Mark tables
# ----------------------------------------------------------------------
@given(
    thresholds=st.lists(st.integers(0, 255), min_size=0, max_size=10),
    value=st.integers(0, 255),
)
def test_mark_table_mark_matches_range_bounds(thresholds, value):
    table = MarkTable(sid=1, feature=0, thresholds=thresholds, bit_width=8)
    mark = table.mark_for(value)
    low, high = table.range_bounds(mark)
    assert low <= value <= high


@given(thresholds=st.lists(st.integers(0, 255), min_size=0, max_size=10))
def test_mark_table_ranges_partition_domain(thresholds):
    table = MarkTable(sid=1, feature=0, thresholds=thresholds, bit_width=8)
    covered = []
    for mark in range(table.n_ranges):
        low, high = table.range_bounds(mark)
        if high >= low:
            covered.extend(range(low, high + 1))
    assert sorted(covered) == list(range(256))


@given(
    thresholds=st.lists(st.integers(0, 255), min_size=1, max_size=8),
    a=st.integers(0, 255),
    b=st.integers(0, 255),
)
def test_mark_table_marks_are_monotone(thresholds, a, b):
    table = MarkTable(sid=1, feature=0, thresholds=thresholds, bit_width=8)
    low, high = min(a, b), max(a, b)
    assert table.mark_for(low) <= table.mark_for(high)


# ----------------------------------------------------------------------
# Pareto front
# ----------------------------------------------------------------------
@given(
    points=st.lists(
        st.tuples(st.floats(0, 1, allow_nan=False), st.floats(0, 1, allow_nan=False)),
        min_size=1,
        max_size=40,
    )
)
def test_pareto_front_members_are_non_dominated(points):
    matrix = np.array(points, dtype=float)
    indices = pareto_front_indices(matrix)
    assert indices.size >= 1
    front = matrix[indices]
    for member in front:
        assert not any(dominates(other, member) for other in matrix)


@given(
    points=st.lists(
        st.tuples(st.floats(0, 1, allow_nan=False), st.floats(0, 1, allow_nan=False)),
        min_size=1,
        max_size=30,
    )
)
def test_every_point_is_dominated_by_or_on_the_front(points):
    matrix = np.array(points, dtype=float)
    indices = set(pareto_front_indices(matrix).tolist())
    front = matrix[sorted(indices)]
    for i, point in enumerate(matrix):
        if i in indices:
            continue
        assert any(dominates(member, point) or np.allclose(member, point) for member in front)


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
@given(
    labels=st.lists(st.integers(0, 4), min_size=1, max_size=60),
    predictions=st.lists(st.integers(0, 4), min_size=1, max_size=60),
)
def test_metric_bounds(labels, predictions):
    n = min(len(labels), len(predictions))
    y_true = np.array(labels[:n])
    y_pred = np.array(predictions[:n])
    assert 0.0 <= accuracy_score(y_true, y_pred) <= 1.0
    for average in ("macro", "weighted", "micro"):
        assert 0.0 <= f1_score(y_true, y_pred, average) <= 1.0


@given(labels=st.lists(st.integers(0, 4), min_size=1, max_size=60))
def test_perfect_prediction_scores_one(labels):
    y = np.array(labels)
    assert accuracy_score(y, y) == 1.0
    assert abs(f1_score(y, y, "weighted") - 1.0) < 1e-9


# ----------------------------------------------------------------------
# CART invariants
# ----------------------------------------------------------------------
@st.composite
def _classification_problem(draw):
    n_samples = draw(st.integers(10, 60))
    n_features = draw(st.integers(1, 5))
    rng = np.random.default_rng(draw(st.integers(0, 2**16)))
    X = rng.normal(size=(n_samples, n_features))
    y = rng.integers(0, draw(st.integers(2, 4)), size=n_samples)
    return X, y


@given(problem=_classification_problem(), max_depth=st.integers(1, 6))
@settings(max_examples=40, deadline=None)
def test_tree_depth_and_budget_invariants(problem, max_depth):
    X, y = problem
    tree = DecisionTreeClassifier(max_depth=max_depth, max_distinct_features=2).fit(X, y)
    assert tree.get_depth() <= max_depth
    assert len(tree.features_used()) <= 2
    predictions = tree.predict(X)
    assert set(np.unique(predictions)) <= set(np.unique(y))


@given(problem=_classification_problem())
@settings(max_examples=30, deadline=None)
def test_tree_node_counts_consistent(problem):
    X, y = problem
    tree = DecisionTreeClassifier(max_depth=5).fit(X, y)
    root = tree.tree_.nodes[0]
    assert root.n_samples == X.shape[0]
    for node in tree.tree_.nodes:
        if not node.is_leaf:
            left = tree.tree_.nodes[node.left]
            right = tree.tree_.nodes[node.right]
            assert node.n_samples == left.n_samples + right.n_samples
            # Splitting never increases weighted impurity (greedy CART invariant).
            weighted_child = (
                left.n_samples * left.impurity + right.n_samples * right.impurity
            )
            assert weighted_child <= node.n_samples * node.impurity + 1e-9
