"""Lifecycle tests for :class:`repro.dataplane.vectorized.ReplayWorkspace`.

The fused window plane's performance claim rests on two properties pinned
here:

1. **Allocation-free steady state** — after the first replay sizes the
   buffers, further rounds and further replays reuse the *same* arrays
   (identities stable, ``reserve`` is a no-op), so the round loop allocates
   nothing per round.
2. **No state leaks** — a workspace carries scratch storage only: reusing
   one across replays (even of different datasets) yields bit-identical
   verdicts, digests and recirculation counters to a fresh workspace.
"""

from __future__ import annotations

import pytest

from repro.dataplane import SpliDTDataPlane
from repro.dataplane import vectorized as vz
from repro.datasets.flows import FiveTuple, Flow, Packet

_BUFFERS = (
    "matrix", "sids", "round_sids", "live", "iota", "fast_live",
    "seg_start", "seg_end", "scratch_idx", "scratch_idx2", "flow_ids",
    "row_slots", "boundary_ts", "first_ts", "packets_seen",
    "iat_acc", "iat_sq", "window_start_mask",
)


def _buffer_addresses(workspace: vz.ReplayWorkspace) -> dict[str, int]:
    return {
        name: getattr(workspace, name).__array_interface__["data"][0]
        for name in _BUFFERS
    }


def _make_flows(n_flows: int, n_packets: int, *, start_id: int = 0) -> list[Flow]:
    flows = []
    for i in range(n_flows):
        tuple_ = FiveTuple(
            src_ip=10_000 + start_id + i, dst_ip=20_000 + i,
            src_port=1000 + i, dst_port=443, protocol=6,
        )
        base = 0.05 * i
        packets = [
            Packet(timestamp=base + 0.01 * j, size=100 + j, flags=0x10,
                   direction=1 if j % 2 == 0 else -1, payload=60 + j)
            for j in range(n_packets)
        ]
        flows.append(Flow(five_tuple=tuple_, packets=packets, label=i % 2,
                          class_name="", flow_id=start_id + i))
    return flows


@pytest.fixture()
def make_program(splidt_model, splidt_rules):
    def _make():
        return SpliDTDataPlane(splidt_model, splidt_rules, flow_slots=65536)
    return _make


class TestAllocationFree:
    def test_reserve_grows_monotonically_then_stays(self):
        ws = vz.ReplayWorkspace()
        ws.reserve(100, 1000)
        addresses = _buffer_addresses(ws)
        assert ws.flow_capacity == 100 and ws.packet_capacity == 1000

        # Smaller and equal requests must not touch a single buffer.
        for n_flows, n_packets in ((10, 10), (100, 1000), (1, 999)):
            ws.reserve(n_flows, n_packets)
            assert _buffer_addresses(ws) == addresses

        # Growth replaces buffers, exactly once, then holds again.
        ws.reserve(200, 1000)
        grown = _buffer_addresses(ws)
        assert grown["matrix"] != addresses["matrix"]
        assert grown["window_start_mask"] == addresses["window_start_mask"]
        ws.reserve(200, 1000)
        assert _buffer_addresses(ws) == grown

    def test_round_loop_never_reallocates(self, make_program, monkeypatch):
        # Capture the workspace buffer addresses at every window round (via
        # the step_windows calls the fused loop makes) and across a second
        # replay: every snapshot must be identical — the round loop works on
        # views of the same storage.
        flows = _make_flows(12, 9)
        ws = vz.ReplayWorkspace()
        program = make_program()
        seen: list[dict[str, int]] = []
        original = program.step_windows

        def recording(**kwargs):
            seen.append(_buffer_addresses(ws))
            return original(**kwargs)

        monkeypatch.setattr(program, "step_windows", recording)
        vz.replay_arrays(program, flows, workspace=ws)
        n_partitions = program.model.config.n_partitions
        assert len(seen) == n_partitions  # one call per fused round

        program2 = make_program()
        monkeypatch.setattr(
            program2, "step_windows",
            lambda **kw: (seen.append(_buffer_addresses(ws)),
                          type(program2).step_windows(program2, **kw))[1],
        )
        vz.replay_arrays(program2, flows, workspace=ws)
        assert len(seen) == 2 * n_partitions
        assert all(snapshot == seen[0] for snapshot in seen)

    def test_window_mask_is_a_zeroed_view(self):
        ws = vz.ReplayWorkspace()
        ws.reserve(4, 50)
        mask = ws.window_mask(30)
        mask[:] = True
        again = ws.window_mask(30)
        assert again.base is ws.window_start_mask
        assert not again.any()
        assert again.size == 30


class TestNoStateLeaks:
    def _snapshot(self, program):
        return (
            {fid: (v.label, v.decided_at, v.first_packet_at,
                   v.n_recirculations, v.early_exit)
             for fid, v in program.verdicts.items()},
            sorted((d.flow_id, d.label, d.timestamp, d.sid)
                   for d in program.controller.digests),
            program.recirculation_stats(),
        )

    def test_second_replay_matches_fresh_workspace(self, make_program):
        # Replay A (large), then replay B (smaller, different flows) on the
        # same workspace; B must be bit-identical to B on a fresh workspace.
        flows_a = _make_flows(20, 11)
        flows_b = _make_flows(7, 5, start_id=100)

        shared = vz.ReplayWorkspace()
        program = make_program()
        vz.replay_arrays(program, flows_a, workspace=shared)
        program_b = make_program()
        vz.replay_arrays(program_b, flows_b, workspace=shared)

        fresh = make_program()
        vz.replay_arrays(fresh, flows_b, workspace=vz.ReplayWorkspace())
        assert self._snapshot(program_b) == self._snapshot(fresh)

    def test_replay_twice_same_flows_is_deterministic(self, make_program):
        flows = _make_flows(10, 8)
        ws = vz.ReplayWorkspace()
        snapshots = []
        for _ in range(2):
            program = make_program()
            vz.replay_arrays(program, flows, workspace=ws)
            snapshots.append(self._snapshot(program))
        assert snapshots[0] == snapshots[1]
        assert len(snapshots[0][0]) == 10  # every flow decided

    def test_staged_list_is_drained_between_replays(self, make_program):
        ws = vz.ReplayWorkspace()
        program = make_program()
        vz.replay_arrays(program, _make_flows(6, 7), workspace=ws)
        # finalise_staged must leave nothing behind for the next replay.
        assert ws.staged == []
