"""Coverage for reporting of full candidate rows and assorted small gaps."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import format_resource_table, format_pareto_table
from repro.core.config import SpliDTConfig
from repro.core.dse import evaluate_configuration
from repro.datasets.materialize import DatasetStore
from repro.datasets.registry import dataset_summary
from repro.switch.targets import TOFINO1


@pytest.fixture(scope="module")
def candidate(small_dataset):
    store = DatasetStore(small_dataset, random_state=2)
    config = SpliDTConfig(depth=4, features_per_subtree=3, partition_sizes=(2, 2))
    return evaluate_configuration(store, config, target=TOFINO1)


class TestFormatResourceTable:
    def test_contains_candidate_row(self, candidate):
        table = format_resource_table({"D3": {100_000: candidate}})
        assert "D3" in table
        assert "100,000" in table
        assert str(candidate.rules.n_entries) in table

    def test_missing_candidate_renders_dashes(self, candidate):
        table = format_resource_table({"D3": {100_000: candidate, 1_000_000: None}})
        assert "1,000,000" in table
        assert "-" in table

    def test_depth_and_partitions_cell(self, candidate):
        table = format_resource_table({"D3": {100_000: candidate}})
        assert f"{candidate.model.total_depth} / {candidate.config.n_partitions}" in table


class TestFormatParetoTableOrdering:
    def test_rows_sorted_by_flow_count(self):
        table = format_pareto_table({"SpliDT": {1_000_000: 0.5, 100_000: 0.9}})
        lines = table.splitlines()
        assert lines[2].startswith("100,000")
        assert lines[3].startswith("1,000,000")


class TestDatasetSummaries:
    @pytest.mark.parametrize("key,classes", [("D1", 19), ("D5", 32), ("D7", 10)])
    def test_summary_class_counts(self, key, classes):
        assert dataset_summary(key)["classes"] == classes

    def test_summary_has_description(self):
        assert len(dataset_summary("D4")["description"]) > 10


class TestCandidateEvaluationDetails:
    def test_rules_and_resources_consistent(self, candidate):
        assert candidate.resources.tcam_entries == candidate.rules.n_entries
        assert candidate.resources.n_subtrees == candidate.model.n_subtrees

    def test_recirculation_estimates_present(self, candidate):
        assert set(candidate.resources.recirculation) == {"WS", "HD"}
        for estimate in candidate.resources.recirculation.values():
            assert estimate.mean_bps >= 0

    def test_feature_register_bits_match_config(self, candidate):
        expected = candidate.config.features_per_subtree * candidate.config.bit_width
        assert candidate.resources.layout.feature_bits == expected

    def test_predictions_reproducible(self, candidate, small_dataset):
        store = DatasetStore(small_dataset, random_state=2)
        windowed = store.fetch(2)
        first = candidate.model.predict_windows(windowed.window_features[:2])
        second = candidate.model.predict_windows(windowed.window_features[:2])
        np.testing.assert_array_equal(first, second)
