"""Parity suite for the compiled lookup plane (`repro.core.rule_lut`).

The dense mark-space LUTs must be bit-identical to the first-match rule
scan for *any* rule set — including unreachable rules (intervals on
features the subtree has no mark table for), over-cap fallback subtrees,
single-leaf subtrees with no mark tables at all, and overlapping rules
where priority order decides the outcome.  The suite checks randomized
synthetic rule sets property-style, plus the compiled rules of a real
trained partitioned model.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.core.partitioned_tree import OUTCOME_EXIT, OUTCOME_NEXT
from repro.core.range_marking import (
    KIND_EXIT,
    KIND_NONE,
    LOOKUP_MODES,
    FeatureQuantizer,
    MarkTable,
    ModelRule,
    RuleSet,
    SubtreeRuleSet,
    group_by_sid,
)
from repro.core.rule_lut import (
    DEFAULT_MAX_CELLS,
    compile_lookup,
    compile_subtree_lut,
)

N_FEATURES = 5
BIT_WIDTH = 12


def _random_ruleset(rng: np.random.Generator) -> RuleSet:
    """A randomized multi-subtree rule set (with deliberately nasty rules)."""
    quantizer = FeatureQuantizer(bit_width=BIT_WIDTH).fit(
        rng.uniform(1.0, 1000.0, size=(50, N_FEATURES))
    )
    max_level = quantizer.max_level
    subtree_rules: dict[int, SubtreeRuleSet] = {}
    for sid in range(1, int(rng.integers(2, 5))):
        features = rng.choice(N_FEATURES, size=int(rng.integers(0, 4)), replace=False)
        mark_tables = {
            int(f): MarkTable(
                sid=sid,
                feature=int(f),
                thresholds=rng.integers(0, max_level, size=int(rng.integers(1, 6))).tolist(),
                bit_width=BIT_WIDTH,
            )
            for f in features
        }
        model_rules = []
        for _ in range(int(rng.integers(1, 10))):
            intervals: dict[int, tuple[int, int]] = {}
            for f, table in mark_tables.items():
                if rng.random() < 0.7:
                    a, b = rng.integers(0, table.n_ranges, size=2)
                    intervals[f] = (int(min(a, b)), int(max(a, b)))
            if rng.random() < 0.2:
                missing = int(rng.integers(0, N_FEATURES))
                if missing not in mark_tables:
                    # Tests a feature the subtree has no mark table for:
                    # the rule can never match on either path.
                    intervals[missing] = (0, 1)
            model_rules.append(
                ModelRule(
                    sid=sid,
                    mark_intervals=intervals,
                    outcome_kind=OUTCOME_EXIT if rng.random() < 0.5 else OUTCOME_NEXT,
                    outcome_value=int(rng.integers(0, 7)),
                )
            )
        subtree_rules[sid] = SubtreeRuleSet(
            sid=sid, mark_tables=mark_tables, model_rules=model_rules
        )
    return RuleSet(subtree_rules=subtree_rules, quantizer=quantizer, bit_width=BIT_WIDTH)


def _random_matrix(rng: np.random.Generator, n_rows: int = 200) -> np.ndarray:
    return rng.uniform(-50.0, 1500.0, size=(n_rows, N_FEATURES))


def _assert_parity(rules: RuleSet, matrix: np.ndarray) -> None:
    for sid in rules.subtree_rules:
        kinds_scan, values_scan = rules.classify_batch(sid, matrix, lookup="scan")
        kinds_lut, values_lut = rules.classify_batch(sid, matrix, lookup="lut")
        np.testing.assert_array_equal(kinds_scan, kinds_lut)
        np.testing.assert_array_equal(values_scan, values_lut)
        assert kinds_scan.dtype == kinds_lut.dtype
        assert values_scan.dtype == values_lut.dtype


class TestRandomizedParity:
    @pytest.mark.parametrize("seed", range(15))
    def test_lut_matches_scan_bit_for_bit(self, seed):
        rng = np.random.default_rng(seed)
        rules = _random_ruleset(rng)
        _assert_parity(rules, _random_matrix(rng))

    @pytest.mark.parametrize("seed", range(5))
    def test_overcap_fallback_matches_scan(self, seed):
        rng = np.random.default_rng(100 + seed)
        rules = _random_ruleset(rng)
        rules.set_lookup("lut", max_cells=2)
        plane = rules.compiled_lookup()
        stats = plane.stats()
        assert stats["n_fallback"] + stats["n_compiled"] == stats["n_subtrees"]
        _assert_parity(rules, _random_matrix(rng))

    def test_quantisation_happens_before_lookup(self):
        # Raw floats far outside the quantiser's domain must saturate the
        # same way on both paths.
        rng = np.random.default_rng(7)
        rules = _random_ruleset(rng)
        extreme = np.array(
            [[-1e9] * N_FEATURES, [1e9] * N_FEATURES, [0.0] * N_FEATURES]
        )
        _assert_parity(rules, extreme)


class TestEdgeSemantics:
    def _quantizer(self) -> FeatureQuantizer:
        return FeatureQuantizer(bit_width=BIT_WIDTH).fit(
            np.full((4, N_FEATURES), 100.0)
        )

    def test_rule_on_missing_feature_never_matches(self):
        quantizer = self._quantizer()
        table = MarkTable(sid=1, feature=0, thresholds=[2000], bit_width=BIT_WIDTH)
        unreachable = ModelRule(
            sid=1, mark_intervals={3: (0, 0)}, outcome_kind=OUTCOME_EXIT, outcome_value=9
        )
        fallback = ModelRule(
            sid=1, mark_intervals={0: (0, 1)}, outcome_kind=OUTCOME_EXIT, outcome_value=4
        )
        rules = RuleSet(
            subtree_rules={
                1: SubtreeRuleSet(
                    sid=1, mark_tables={0: table}, model_rules=[unreachable, fallback]
                )
            },
            quantizer=quantizer,
            bit_width=BIT_WIDTH,
        )
        matrix = np.array([[10.0, 0, 0, 99.0, 0], [90.0, 0, 0, 1.0, 0]])
        for mode in LOOKUP_MODES:
            kinds, values = rules.classify_batch(1, matrix, lookup=mode)
            assert kinds.tolist() == [KIND_EXIT, KIND_EXIT]
            assert values.tolist() == [4, 4], mode

    def test_single_leaf_subtree_without_mark_tables(self):
        quantizer = self._quantizer()
        rule = ModelRule(
            sid=2, mark_intervals={}, outcome_kind=OUTCOME_EXIT, outcome_value=3
        )
        rules = RuleSet(
            subtree_rules={
                2: SubtreeRuleSet(sid=2, mark_tables={}, model_rules=[rule])
            },
            quantizer=quantizer,
            bit_width=BIT_WIDTH,
        )
        matrix = np.zeros((5, N_FEATURES))
        for mode in LOOKUP_MODES:
            kinds, values = rules.classify_batch(2, matrix, lookup=mode)
            assert kinds.tolist() == [KIND_EXIT] * 5
            assert values.tolist() == [3] * 5

    def test_first_match_priority_wins_on_overlap(self):
        quantizer = self._quantizer()
        table = MarkTable(
            sid=1, feature=0, thresholds=[1000, 2000], bit_width=BIT_WIDTH
        )
        # Both rules cover mark 1; the first must win everywhere it matches.
        first = ModelRule(
            sid=1, mark_intervals={0: (1, 2)}, outcome_kind=OUTCOME_EXIT, outcome_value=1
        )
        second = ModelRule(
            sid=1, mark_intervals={0: (0, 1)}, outcome_kind=OUTCOME_EXIT, outcome_value=2
        )
        rules = RuleSet(
            subtree_rules={
                1: SubtreeRuleSet(
                    sid=1, mark_tables={0: table}, model_rules=[first, second]
                )
            },
            quantizer=quantizer,
            bit_width=BIT_WIDTH,
        )
        lut = compile_subtree_lut(rules.subtree_rules[1], quantizer)
        # Mark 0 only the second rule covers; mark 1 both cover and the
        # first (higher-priority) rule must win; mark 2 only the first.
        assert lut.kinds.tolist() == [KIND_EXIT, KIND_EXIT, KIND_EXIT]
        assert lut.values.tolist() == [2, 1, 1]
        _assert_parity(rules, _random_matrix(np.random.default_rng(0), 50))

    def test_astronomical_mark_space_falls_back_instead_of_crashing(self):
        """A mark-space product past int64 must hit the cap, not overflow."""
        from types import SimpleNamespace

        huge = SimpleNamespace(n_ranges=1 << 40)
        rules = SubtreeRuleSet.__new__(SubtreeRuleSet)
        rules.sid = 1
        rules.mark_tables = {0: huge, 1: huge}  # product 2**80 >> 2**63
        rules.model_rules = []
        quantizer = self._quantizer()
        assert compile_subtree_lut(rules, quantizer) is None

    def test_unknown_sid_and_empty_batch(self):
        rng = np.random.default_rng(3)
        rules = _random_ruleset(rng)
        kinds, values = rules.classify_batch(999, _random_matrix(rng, 4))
        assert kinds.tolist() == [KIND_NONE] * 4 and values.tolist() == [0] * 4
        kinds, values = rules.classify_batch(1, _random_matrix(rng, 0))
        assert kinds.size == 0 and values.size == 0


class TestTrainedModelParity:
    def test_trained_rules_parity(self, splidt_rules, windowed3):
        matrix = np.vstack(
            [windowed3.partition_matrix(p, "train") for p in range(3)]
        )
        _assert_parity(splidt_rules, matrix)

    def test_compiled_plane_covers_every_subtree(self, splidt_rules):
        plane = compile_lookup(splidt_rules)
        stats = plane.stats()
        assert stats["n_subtrees"] == len(splidt_rules.subtree_rules)
        assert stats["n_fallback"] == 0
        assert stats["total_cells"] > 0


class TestLookupPlumbing:
    def test_lut_is_the_default(self, splidt_rules):
        assert splidt_rules.lookup == "lut"

    def test_set_lookup_validates_and_chains(self, splidt_rules):
        try:
            assert splidt_rules.set_lookup("scan") is splidt_rules
        finally:
            # Session-scoped fixture: always restore the default mode.
            splidt_rules.set_lookup("lut")
        with pytest.raises(ValueError, match="unknown lookup mode"):
            splidt_rules.set_lookup("hash")
        with pytest.raises(ValueError, match="unknown lookup mode"):
            splidt_rules.classify_batch(1, np.zeros((1, N_FEATURES)), lookup="bad")

    def test_set_lookup_max_cells_invalidates_cache(self):
        rules = _random_ruleset(np.random.default_rng(5))
        full = rules.compiled_lookup()
        assert full.max_cells == DEFAULT_MAX_CELLS
        rules.set_lookup("lut", max_cells=1)
        tiny = rules.compiled_lookup()
        assert tiny is not full and tiny.max_cells == 1

    def test_program_captures_lookup_mode_at_build(self, splidt_model, splidt_rules):
        """A built program keeps its lookup mode when the shared rules flip.

        `build_program` re-pins the shared RuleSet per spec; programs built
        earlier must not silently switch paths (A/B benchmark safety).
        """
        from repro.dataplane import SpliDTDataPlane

        try:
            splidt_rules.set_lookup("scan")
            program = SpliDTDataPlane(splidt_model, splidt_rules, flow_slots=1024)
            splidt_rules.set_lookup("lut")
            assert program._lookup_mode == "scan"
        finally:
            splidt_rules.set_lookup("lut")

    def test_set_lookup_same_mode_is_a_noop(self):
        # Re-selecting the current mode must not invalidate the compiled
        # plane — program builders call set_lookup per shard/worker.
        rules = _random_ruleset(np.random.default_rng(7))
        compiled = rules.compiled_lookup()
        assert rules.set_lookup("lut") is rules
        assert rules.set_lookup("lut", max_cells=rules.lut_max_cells) is rules
        assert rules.compiled_lookup() is compiled

    def test_set_lookup_concurrent_with_classification(self):
        # Hammer set_lookup from several threads while others classify via
        # the compiled plane; nothing may raise and every answer must match
        # the single-threaded scan.
        import threading

        rng = np.random.default_rng(8)
        rules = _random_ruleset(rng)
        sid = next(iter(rules.subtree_rules))
        matrix = _random_matrix(np.random.default_rng(8))
        expected = rules.classify_batch(sid, matrix, lookup="scan")
        errors = []
        start = threading.Barrier(6)

        def flipper():
            start.wait()
            for _ in range(200):
                rules.set_lookup("lut")

        def classifier():
            start.wait()
            try:
                for _ in range(50):
                    got = rules.classify_batch(sid, matrix, lookup="lut")
                    np.testing.assert_array_equal(got[0], expected[0])
                    np.testing.assert_array_equal(got[1], expected[1])
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=flipper) for _ in range(3)]
        threads += [threading.Thread(target=classifier) for _ in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors

    def test_pickle_drops_compiled_cache(self):
        rules = _random_ruleset(np.random.default_rng(6))
        rules.compiled_lookup()
        clone = pickle.loads(pickle.dumps(rules))
        assert clone._compiled is None
        assert clone.lookup == rules.lookup
        _assert_parity(clone, _random_matrix(np.random.default_rng(6)))


class TestGroupBySid:
    def test_groups_match_unique_mask_loop(self):
        rng = np.random.default_rng(1)
        sids = rng.integers(0, 6, size=200)
        grouped = {sid: rows for sid, rows in group_by_sid(sids)}
        assert sorted(grouped) == np.unique(sids).tolist()
        for sid in grouped:
            np.testing.assert_array_equal(
                grouped[sid], np.flatnonzero(sids == sid)
            )

    def test_empty_input_yields_nothing(self):
        assert list(group_by_sid(np.array([], dtype=np.int64))) == []
