"""Tests for the adversarial workload suite (:mod:`repro.scenarios`)."""

from __future__ import annotations

import copy
import json
import math
from pathlib import Path

import numpy as np
import pytest

from repro.dataplane.splidt_program import SpliDTDataPlane
from repro.pipeline.spec import ExperimentSpec, SpecError
from repro.scenarios import (
    DegradationBounds,
    LayerSpec,
    ScenarioError,
    ScenarioSpec,
    available_workload_scenarios,
    build_workload,
    classify,
    get_workload_scenario,
    load_classbench,
    run_scenario,
    sample_tuple,
    sweep_occupancy,
)
from repro.scenarios.classbench import ClassBenchError
from repro.scenarios.runner import prepare_system
from repro.switch.phv import make_data_phv
from repro.switch.registers import make_eviction_policy

FIXTURE = Path(__file__).parent / "data" / "classbench_small.rules"

#: SoA columns that must be bit-identical between representations.
SOA_COLUMNS = (
    "timestamps", "sizes", "flags", "directions", "payloads", "packet_flow",
    "flow_starts", "flow_ids", "labels", "n_packets_per_flow", "src_ports",
    "dst_ports", "protocols", "first_sizes", "first_timestamps",
    "interleave_order",
)


def _ip(a: int, b: int, c: int, d: int) -> int:
    return (a << 24) | (b << 16) | (c << 8) | d


# ----------------------------------------------------------------------
# ClassBench loader (satellite: fixture-driven unit tests)
# ----------------------------------------------------------------------
class TestClassBenchLoader:
    def test_fixture_parses_in_priority_order(self):
        rules = load_classbench(FIXTURE)
        assert [rule.priority for rule in rules] == [0, 1, 2, 3]

    def test_prefix_field_expands_to_range(self):
        rule = load_classbench(FIXTURE)[0]
        assert rule.src_lo == _ip(192, 168, 0, 0)
        assert rule.src_hi == _ip(192, 168, 255, 255)
        assert rule.dst_lo == _ip(10, 0, 0, 0)
        assert rule.dst_hi == _ip(10, 255, 255, 255)
        assert (rule.dport_lo, rule.dport_hi) == (80, 80)
        assert (rule.proto, rule.proto_mask) == (0x06, 0xFF)

    def test_exact_fields_collapse_to_single_points(self):
        rule = load_classbench(FIXTURE)[1]
        assert rule.src_lo == rule.src_hi == _ip(192, 168, 1, 1)
        assert rule.dst_lo == rule.dst_hi == _ip(10, 1, 2, 3)
        assert (rule.sport_lo, rule.sport_hi) == (1024, 1024)

    def test_zero_length_prefix_matches_everything(self):
        rule = load_classbench(FIXTURE)[2]
        assert (rule.src_lo, rule.src_hi) == (0, 0xFFFFFFFF)
        assert rule.proto_mask == 0  # 0x00/0x00 = any protocol

    def test_classify_is_first_match(self):
        from repro.datasets.flows import FiveTuple

        rules = load_classbench(FIXTURE)
        http = FiveTuple(src_ip=_ip(192, 168, 7, 9), dst_ip=_ip(10, 2, 3, 4),
                         src_port=40000, dst_port=80, protocol=0x06)
        # Matches both rule 0 and the rule-2 wildcard; priority wins.
        assert classify(rules, http) == 0
        stray = FiveTuple(src_ip=_ip(8, 8, 8, 8), dst_ip=_ip(9, 9, 9, 9),
                          src_port=1, dst_port=1, protocol=0x2F)
        assert classify(rules, stray) == 2

    def test_sample_tuple_matches_its_rule_and_is_deterministic(self):
        rules = load_classbench(FIXTURE)
        for index in range(len(rules)):
            tuple_ = sample_tuple(rules, np.random.default_rng(5), rule_index=index)
            assert rules[index].matches(tuple_)
        again = [sample_tuple(rules, np.random.default_rng(11)) for _ in range(8)]
        twice = [sample_tuple(rules, np.random.default_rng(11)) for _ in range(8)]
        assert again == twice

    @pytest.mark.parametrize("line, fragment", [
        ("192.168.0.0/16 10.0.0.0/8 0 : 65535 80 : 80 0x06/0xFF", "start with '@'"),
        ("@300.0.0.0/8 10.0.0.0/8 0 : 65535 80 : 80 0x06/0xFF", "malformed IP prefix"),
        ("@10.0.0.0/33 10.0.0.0/8 0 : 65535 80 : 80 0x06/0xFF", "malformed IP prefix"),
        ("@10.0.0.0/8 10.0.0.0/8 80 : 70 80 : 80 0x06/0xFF", "out of order"),
        ("@10.0.0.0/8 10.0.0.0/8 0 : 70000 80 : 80 0x06/0xFF", "out of order or out of"),
        ("@10.0.0.0/8 10.0.0.0/8 0 : 65535 80 : 80 6", "malformed protocol"),
        ("@10.0.0.0/8 10.0.0.0/8 0 - 65535 80 : 80 0x06/0xFF", "'lo : hi'"),
        ("@10.0.0.0/8 10.0.0.0/8 0 : 65535 0x06/0xFF", "at least 9 fields"),
    ])
    def test_malformed_lines_rejected_with_line_number(self, tmp_path, line, fragment):
        path = tmp_path / "bad.rules"
        path.write_text("# leading comment\n\n" + line + "\n")
        with pytest.raises(ClassBenchError, match="line 3") as excinfo:
            load_classbench(path)
        assert fragment in str(excinfo.value)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.rules"
        path.write_text("# nothing here\n")
        with pytest.raises(ClassBenchError, match="no filters"):
            load_classbench(path)


# ----------------------------------------------------------------------
# ScenarioSpec serialisation
# ----------------------------------------------------------------------
class TestScenarioSpec:
    def _spec(self) -> ScenarioSpec:
        return ScenarioSpec(
            name="roundtrip", dataset="D2", traffic_flows=100, seed=9,
            layers=(
                LayerSpec("heavy-hitter", {"skew": 1.5}),
                LayerSpec("ddos-flood", {"flows": 50}),
            ),
            eviction="idle-timeout", eviction_timeout=0.25,
            streamed=True, chunk_size=512,
            bounds=DegradationBounds(min_accuracy=0.4),
        )

    def test_round_trip(self):
        spec = self._spec()
        restored = ScenarioSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert restored == spec
        assert math.isinf(restored.bounds.max_median_ttd)

    def test_unknown_keys_rejected_at_every_level(self):
        data = self._spec().to_dict()
        with pytest.raises(ScenarioError, match="unknown scenario fields"):
            ScenarioSpec.from_dict({**data, "bogus": 1})
        bad_layer = dict(data)
        bad_layer["layers"] = [{**data["layers"][0], "bogus": 1}]
        with pytest.raises(ScenarioError, match="unknown layer fields"):
            ScenarioSpec.from_dict(bad_layer)
        bad_bounds = dict(data)
        bad_bounds["bounds"] = {**data["bounds"], "bogus": 1}
        with pytest.raises(ScenarioError, match="unknown bounds fields"):
            ScenarioSpec.from_dict(bad_bounds)

    def test_validation_rejects_bad_values(self):
        with pytest.raises(ScenarioError, match="eviction"):
            ScenarioSpec(eviction="nope").validate()
        with pytest.raises(ScenarioError, match="layer kind"):
            ScenarioSpec(layers=(LayerSpec("meteor-strike", {}),)).validate()
        with pytest.raises(ScenarioError, match="unknown parameters"):
            ScenarioSpec(layers=(LayerSpec("evasion", {"zoom": 2}),)).validate()
        with pytest.raises(ScenarioError, match="fraction"):
            ScenarioSpec(layers=(LayerSpec("evasion", {"fraction": 1.5}),)).validate()

    def test_nested_in_experiment_spec(self):
        spec = ExperimentSpec(scenario=self._spec().replace(streamed=False)).validate()
        data = json.loads(json.dumps(spec.to_dict()))
        assert ExperimentSpec.from_dict(data) == spec
        with pytest.raises(SpecError, match="unknown scenario fields"):
            ExperimentSpec.from_dict(
                {**data, "scenario": {**data["scenario"], "bogus": 1}}
            )
        with pytest.raises(SpecError, match="scenario"):
            ExperimentSpec(scenario=ScenarioSpec(eviction="nope")).validate()

    def test_catalog_entries_all_validate(self):
        for name in available_workload_scenarios():
            get_workload_scenario(name).validate()
        with pytest.raises(ScenarioError, match="unknown workload scenario"):
            get_workload_scenario("does-not-exist")


# ----------------------------------------------------------------------
# Traffic layers
# ----------------------------------------------------------------------
class TestTrafficLayers:
    BASE = ScenarioSpec(name="base", dataset="D3", traffic_flows=40, seed=21)

    def test_build_is_deterministic(self):
        first = build_workload(self.BASE.replace(
            layers=(LayerSpec("ddos-flood", {"flows": 32}),)))
        second = build_workload(self.BASE.replace(
            layers=(LayerSpec("ddos-flood", {"flows": 32}),)))
        for column in SOA_COLUMNS:
            assert np.array_equal(getattr(first.soa, column),
                                  getattr(second.soa, column)), column

    def test_layers_do_not_disturb_legitimate_draws(self):
        # Layer randomness is disjoint from the generator stream: adding a
        # heavy-hitter layer rewrites src_ips but nothing else.
        plain = build_workload(self.BASE)
        layered = build_workload(self.BASE.replace(
            layers=(LayerSpec("heavy-hitter", {}),)))
        assert plain.n_flows == layered.n_flows
        for column in ("timestamps", "sizes", "labels", "n_packets_per_flow",
                       "dst_ports", "protocols"):
            assert np.array_equal(getattr(plain.soa, column),
                                  getattr(layered.soa, column)), column
        pool = 0x0A800000 + np.arange(16)
        sources = {layered.flows[i].five_tuple.src_ip
                   for i in range(layered.n_flows)}
        assert sources <= set(int(ip) for ip in pool)

    def test_flash_crowd_compresses_start_times(self):
        layered = build_workload(self.BASE.replace(
            layers=(LayerSpec("flash-crowd",
                              {"at": 2.0, "width": 0.1, "fraction": 1.0}),)))
        starts = np.asarray(layered.soa.first_timestamps)
        assert np.all((starts >= 2.0) & (starts < 2.1))

    def test_ddos_flood_appends_short_unclassifiable_flows(self):
        workload = build_workload(self.BASE.replace(
            layers=(LayerSpec("ddos-flood",
                              {"flows": 64, "min_packets": 1, "max_packets": 3}),)))
        assert workload.n_flows == workload.n_legit + 64
        flood_counts = np.asarray(workload.soa.n_packets_per_flow[workload.n_legit:])
        assert flood_counts.min() >= 1 and flood_counts.max() <= 3
        assert np.all(np.asarray(workload.soa.labels[workload.n_legit:]) == 0)

    def test_evasion_layer_shrinks_advertised_sizes(self):
        honest = build_workload(self.BASE)
        assert honest.advertised is None
        evading = build_workload(self.BASE.replace(
            layers=(LayerSpec("evasion", {"scale": 0.5, "fraction": 1.0}),)))
        truth = np.asarray(evading.soa.n_packets_per_flow)
        expected = np.maximum(np.round(truth * 0.5).astype(np.int64), 1)
        assert np.array_equal(evading.advertised, expected)

    def test_streamed_matches_materialized_bit_exactly(self):
        spec = self.BASE.replace(layers=(
            LayerSpec("heavy-hitter", {}),
            LayerSpec("flash-crowd", {}),
            LayerSpec("ddos-flood", {"flows": 48}),
        ))
        materialized = build_workload(spec)
        with build_workload(spec.replace(streamed=True)) as streamed:
            assert streamed.streamed and not materialized.streamed
            for column in SOA_COLUMNS:
                assert np.array_equal(getattr(materialized.soa, column),
                                      getattr(streamed.soa, column)), column
            for i in (0, materialized.n_legit, materialized.n_flows - 1):
                assert (materialized.flows[i].five_tuple
                        == streamed.flows[i].five_tuple)

    def test_ruleset_derives_five_tuples_from_filters(self):
        rules = load_classbench(FIXTURE)
        workload = build_workload(self.BASE.replace(ruleset=str(FIXTURE)))
        for i in range(workload.n_legit):
            assert classify(rules, workload.flows[i].five_tuple) is not None


# ----------------------------------------------------------------------
# Eviction tie-breaking (satellite: determinism unit tests)
# ----------------------------------------------------------------------
class TestEvictionTieBreaking:
    def _program(self, splidt_model, splidt_rules, policy):
        return SpliDTDataPlane(
            splidt_model, splidt_rules, flow_slots=1,
            eviction=make_eviction_policy(policy),
        )

    @staticmethod
    def _packet(program, flow, index, flow_id):
        packet = flow.packets[index]
        program.process_packet(make_data_phv(flow.five_tuple, packet),
                               flow_id, flow.n_packets)

    @staticmethod
    def _pair(dataset):
        # The session-scoped dataset is shared with other test modules:
        # deep-copy before mutating timestamps.
        return copy.deepcopy(dataset.flows[0]), copy.deepcopy(dataset.flows[1])

    def test_exact_timestamp_tie_keeps_resident(self, splidt_model, splidt_rules,
                                                small_dataset):
        resident, challenger = self._pair(small_dataset)
        challenger.packets[0].timestamp = resident.packets[0].timestamp
        program = self._program(splidt_model, splidt_rules, "lru")
        self._packet(program, resident, 0, resident.flow_id)
        self._packet(program, challenger, 0, challenger.flow_id)
        # lru compares strictly: an exact tie keeps the resident.
        assert program.eviction_stats()["evictions"] == 0
        assert challenger.flow_id not in program.verdicts

    def test_later_packet_evicts_under_lru(self, splidt_model, splidt_rules,
                                           small_dataset):
        resident, challenger = self._pair(small_dataset)
        challenger.packets[0].timestamp = resident.packets[0].timestamp + 1e-6
        program = self._program(splidt_model, splidt_rules, "lru")
        self._packet(program, resident, 0, resident.flow_id)
        self._packet(program, challenger, 0, challenger.flow_id)
        stats = program.eviction_stats()
        assert stats["evictions"] == 1
        assert stats["evicted_flows"] == [resident.flow_id]

    def test_idle_timeout_boundary_is_exclusive(self, splidt_model, splidt_rules,
                                                small_dataset):
        resident, challenger = self._pair(small_dataset)
        base = resident.packets[0].timestamp
        for delta, evictions in ((1.0, 0), (1.0 + 1e-9, 1)):
            challenger.packets[0].timestamp = base + delta
            program = SpliDTDataPlane(
                splidt_model, splidt_rules, flow_slots=1,
                eviction=make_eviction_policy("idle-timeout", timeout=1.0),
            )
            self._packet(program, resident, 0, resident.flow_id)
            self._packet(program, challenger, 0, challenger.flow_id)
            assert program.eviction_stats()["evictions"] == evictions, delta

    def test_eviction_replay_is_deterministic(self, splidt_model, splidt_rules,
                                              small_dataset):
        def replay():
            program = SpliDTDataPlane(
                splidt_model, splidt_rules, flow_slots=16,
                eviction=make_eviction_policy("lru"),
            )
            for flow in small_dataset.flows:
                for packet in flow.packets:
                    program.process_packet(make_data_phv(flow.five_tuple, packet),
                                           flow.flow_id, flow.n_packets)
            return (sorted(program.verdicts), program.eviction_stats())

        assert replay() == replay()


# ----------------------------------------------------------------------
# Runner
# ----------------------------------------------------------------------
class TestRunner:
    SPEC = ScenarioSpec(
        name="runner-smoke", dataset="D3", traffic_flows=48, seed=5,
        layers=(LayerSpec("ddos-flood", {"flows": 96}),),
        eviction="lru",
    )

    @pytest.fixture(scope="class")
    def prepared(self):
        # A small model keeps class-scoped training cheap.
        return prepare_system(
            self.SPEC, ExperimentSpec(n_flows=140, depth=6, features_per_subtree=3)
        )

    def test_run_scenario_reports_degradation(self, prepared):
        result = run_scenario(self.SPEC, flow_slots=64, prepared=prepared)
        assert result.n_flows == 48 + 96
        assert result.n_legit == 48
        assert result.occupancy == pytest.approx(result.n_flows / 64)
        assert 0.0 <= result.decided_fraction <= 1.0
        assert 0.0 <= result.accuracy <= 1.0
        assert result.eviction_policy == "lru"
        json.dumps(result.to_dict())  # JSON-compatible

    def test_streamed_replay_matches_materialized(self, prepared):
        plain = run_scenario(self.SPEC, flow_slots=64, prepared=prepared)
        streamed = run_scenario(self.SPEC.replace(streamed=True),
                                flow_slots=64, prepared=prepared)
        assert streamed.streamed and not plain.streamed
        assert streamed.accuracy == plain.accuracy
        assert streamed.decided_fraction == plain.decided_fraction
        assert streamed.evictions == plain.evictions
        assert streamed.materialised_estimate is not None

    def test_bounds_violations_are_reported(self, prepared):
        result = run_scenario(self.SPEC, flow_slots=64, prepared=prepared)
        impossible = DegradationBounds(min_accuracy=1.01,
                                       min_decided_fraction=1.01,
                                       max_median_ttd=0.0)
        problems = result.violations(impossible)
        assert len(problems) >= 2
        assert result.violations(None) == []
        assert result.violations(DegradationBounds()) == []

    def test_sweep_occupancy_scales_pressure(self):
        results = sweep_occupancy(
            self.SPEC.replace(layers=()), flow_slots=32, factors=(0.5, 2.0),
            experiment=ExperimentSpec(n_flows=140, depth=6,
                                      features_per_subtree=3),
        )
        assert [r.flow_slots for r in results] == [32, 32]
        assert results[0].n_flows < results[1].n_flows
        assert results[0].occupancy < results[1].occupancy
