"""Docstring enforcement for the serving layer's public surface.

The serving engines are the repository's operations surface: every exported
name and every public method must say what it does — and the lifecycle
methods must state their blocking/ordering/backpressure contract (a
pydocstyle-lite check, kept in-tree so the bar cannot rot).
"""

from __future__ import annotations

import inspect

import pytest

import repro.serve as serve
from repro.serve import (
    InferenceEngine,
    MicroBatchEngine,
    ProcessShardedEngine,
    ShardedEngine,
    StreamingEngine,
)

ENGINE_CLASSES = (
    InferenceEngine,
    StreamingEngine,
    MicroBatchEngine,
    ShardedEngine,
    ProcessShardedEngine,
)

#: Lifecycle methods whose docstrings must spell out the behavioural
#: contract (blocking, ordering, backpressure) — not just exist.
CONTRACT_WORDS = {
    "ingest": ("block", "order"),
    "drain": ("block",),
    "close": ("block", "idempotent"),
}


def _public_methods(cls):
    for name, member in inspect.getmembers(cls):
        if name.startswith("_"):
            continue
        if callable(member) or isinstance(inspect.getattr_static(cls, name, None), property):
            yield name, member


def test_every_exported_name_has_a_docstring():
    for name in serve.__all__:
        obj = getattr(serve, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            assert (obj.__doc__ or "").strip(), f"repro.serve.{name} has no docstring"


def test_serve_modules_have_docstrings():
    import repro.serve.engine
    import repro.serve.microbatch
    import repro.serve.process_sharded
    import repro.serve.sharded
    import repro.serve.streaming

    for module in (serve, serve.engine, serve.streaming, serve.microbatch,
                   serve.sharded, serve.process_sharded):
        assert (module.__doc__ or "").strip(), f"{module.__name__} has no docstring"


@pytest.mark.parametrize("cls", ENGINE_CLASSES, ids=lambda c: c.__name__)
def test_every_public_method_documented(cls):
    missing = []
    for name, member in _public_methods(cls):
        static = inspect.getattr_static(cls, name, None)
        doc = getattr(member, "__doc__", None)
        if isinstance(static, property):
            doc = static.__doc__
        if not (doc or "").strip():
            missing.append(name)
    assert not missing, f"{cls.__name__} methods without docstrings: {missing}"


@pytest.mark.parametrize("method,required", sorted(CONTRACT_WORDS.items()))
def test_lifecycle_docstrings_state_their_contract(method, required):
    doc = (getattr(InferenceEngine, method).__doc__ or "").lower()
    for word in required:
        assert word in doc, (
            f"InferenceEngine.{method} docstring must document its "
            f"{word!r} behaviour (blocking/ordering/backpressure contract)"
        )
