"""Streaming-parity tests for the serving engines (`repro.serve`).

The contract (see ``repro/serve/engine.py``): for a time-ordered stream,
every engine — per-packet streaming, micro-batch in any chunking, and the
sharded engine with any shard count — produces verdicts, TTD arrays and
recirculation statistics **bit-identical** to
``replay_dataset(..., engine="reference")`` over the same packets.  The
parameterised suite covers chunk sizes {1, 7, window-aligned, whole-dataset},
hash-collision flows (tiny register files), and the IAT accumulation-order
guarantee (configs whose subtrees use the mean/std inter-arrival features),
plus the protocol/lifecycle and backpressure behaviour.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import train_topk_model
from repro.core.config import TopKConfig
from repro.dataplane import SpliDTDataPlane, TopKDataPlane, replay_dataset
from repro.datasets.flows import PacketArrays
from repro.datasets.streams import PacketChunk, iter_packet_chunks
from repro.features.window import window_boundaries
from repro.serve import (
    BackpressureError,
    MicroBatchEngine,
    ServeError,
    ShardedEngine,
    StreamingEngine,
    create_engine,
)

#: Chunk-size axis of the parity matrix; ``"window"`` splits the stream at
#: every packet that completes some flow's window, ``None`` is the whole
#: dataset in one chunk.
CHUNKINGS = (1, 7, "window", None)


def _window_aligned_chunks(flows, n_partitions: int):
    """Chunks that end exactly where some flow completes a window."""
    soa = PacketArrays.from_flows(flows)
    boundary = np.zeros(soa.n_packets, dtype=bool)
    for index, flow in enumerate(flows):
        if flow.n_packets == 0:
            continue
        start = int(soa.flow_starts[index])
        for count in window_boundaries(flow.n_packets, n_partitions):
            boundary[start + count - 1] = True
    order = soa.interleave_order
    cut_after = np.flatnonzero(boundary[order])
    pieces = np.split(order, cut_after + 1)
    return [PacketChunk(soa=soa, flows=flows, positions=piece)
            for piece in pieces if piece.size]


def _chunks(flows, chunking, n_partitions: int = 3):
    if chunking == "window":
        return _window_aligned_chunks(flows, n_partitions)
    return list(iter_packet_chunks(flows, chunking))


def _stream(engine, chunks):
    engine.open()
    for chunk in chunks:
        engine.ingest(chunk)
    engine.drain()
    return engine.close()


def _assert_identical(reference, served):
    """Field-by-field equality of a reference replay and a served result."""
    assert set(reference.verdicts) == set(served.verdicts)
    for flow_id, ref_verdict in reference.verdicts.items():
        verdict = served.verdicts[flow_id]
        assert ref_verdict.label == verdict.label
        assert ref_verdict.decided_at == verdict.decided_at
        assert ref_verdict.first_packet_at == verdict.first_packet_at
        assert ref_verdict.n_recirculations == verdict.n_recirculations
        assert ref_verdict.early_exit == verdict.early_exit
    assert np.array_equal(reference.time_to_detection(), served.time_to_detection())
    assert reference.labels == served.labels
    assert reference.report.f1_score == served.report.f1_score
    assert reference.recirculation == served.recirculation


class TestMicroBatchParity:
    """MicroBatchEngine == reference, for every chunking of the stream."""

    @pytest.fixture(scope="class")
    def reference(self, splidt_model, splidt_rules, small_dataset):
        program = SpliDTDataPlane(splidt_model, splidt_rules, flow_slots=8192)
        return replay_dataset(program, small_dataset, engine="reference")

    @pytest.mark.parametrize("chunking", CHUNKINGS)
    def test_chunking_invariance(
        self, chunking, splidt_model, splidt_rules, small_dataset, reference
    ):
        program = SpliDTDataPlane(splidt_model, splidt_rules, flow_slots=8192)
        engine = MicroBatchEngine(program, flush_flows=4)
        result = _stream(engine, _chunks(small_dataset.flows, chunking))
        _assert_identical(reference, result)

    @pytest.mark.parametrize("chunking", CHUNKINGS)
    def test_hash_collisions(self, chunking, splidt_model, splidt_rules, small_dataset):
        # 64 slots for 360 flows: most flows collide; undecided collision
        # flows leave dirty slots that later flows must inherit bit-exactly.
        reference = replay_dataset(
            SpliDTDataPlane(splidt_model, splidt_rules, flow_slots=64),
            small_dataset,
            engine="reference",
        )
        program = SpliDTDataPlane(splidt_model, splidt_rules, flow_slots=64)
        result = _stream(
            MicroBatchEngine(program, flush_flows=2),
            _chunks(small_dataset.flows, chunking),
        )
        _assert_identical(reference, result)

    def test_deferred_mode_equals_vectorized_replay(
        self, splidt_model, splidt_rules, small_dataset
    ):
        vectorized = replay_dataset(
            SpliDTDataPlane(splidt_model, splidt_rules, flow_slots=8192),
            small_dataset,
            engine="vectorized",
        )
        program = SpliDTDataPlane(splidt_model, splidt_rules, flow_slots=8192)
        result = _stream(
            MicroBatchEngine(program, eager=False), _chunks(small_dataset.flows, 64)
        )
        _assert_identical(vectorized, result)

    def test_truncated_stream_matches_reference_prefix(
        self, splidt_model, splidt_rules, small_dataset
    ):
        # Stop the stream mid-trace: flows with buffered prefixes must replay
        # exactly as the reference loop over the same packet subset (full
        # flow sizes in the headers, no verdicts for flows that never reach
        # their final window).
        flows = small_dataset.flows
        chunks = list(iter_packet_chunks(flows, 500))
        half = chunks[: len(chunks) // 2]

        reference_program = SpliDTDataPlane(splidt_model, splidt_rules, flow_slots=8192)
        reference = _stream(StreamingEngine(reference_program), half)

        program = SpliDTDataPlane(splidt_model, splidt_rules, flow_slots=8192)
        result = _stream(MicroBatchEngine(program, flush_flows=4), half)
        _assert_identical(reference, result)


@pytest.mark.parametrize(
    "key,depth,k,partitions",
    [("D1", 8, 6, 4), ("D2", 10, 5, 5)],
)
def test_microbatch_parity_across_datasets(key, depth, k, partitions):
    """Different configs activate different kernels — including the IAT
    features whose left-to-right accumulation order the vectorized machinery
    must reproduce bit for bit."""
    from test_dataplane_vectorized import _splidt_artifacts

    dataset, model, rules = _splidt_artifacts(
        key, n_flows=120, depth=depth, k=k, partitions=partitions, seed=13
    )
    reference = replay_dataset(
        SpliDTDataPlane(model, rules, flow_slots=8192), dataset, engine="reference"
    )
    program = SpliDTDataPlane(model, rules, flow_slots=8192)
    result = _stream(
        MicroBatchEngine(program, flush_flows=4), _chunks(dataset.flows, 7, partitions)
    )
    _assert_identical(reference, result)


class TestShardedParity:
    """ShardedEngine >= 2 shards == reference, verdicts merged bit for bit."""

    @pytest.mark.parametrize("n_shards", (2, 3))
    @pytest.mark.parametrize("flow_slots", (8192, 64))
    def test_sharded_microbatch(
        self, n_shards, flow_slots, splidt_model, splidt_rules, small_dataset
    ):
        reference = replay_dataset(
            SpliDTDataPlane(splidt_model, splidt_rules, flow_slots=flow_slots),
            small_dataset,
            engine="reference",
        )
        engine = ShardedEngine(
            lambda: SpliDTDataPlane(splidt_model, splidt_rules, flow_slots=flow_slots),
            n_shards=n_shards,
            flush_flows=4,
        )
        result = _stream(engine, _chunks(small_dataset.flows, 64))
        _assert_identical(reference, result)

    def test_sharded_streaming_children(self, splidt_model, splidt_rules, small_dataset):
        reference = replay_dataset(
            SpliDTDataPlane(splidt_model, splidt_rules, flow_slots=8192),
            small_dataset,
            engine="reference",
        )
        engine = ShardedEngine(
            lambda: SpliDTDataPlane(splidt_model, splidt_rules, flow_slots=8192),
            n_shards=2,
            child_engine="streaming",
        )
        result = _stream(engine, _chunks(small_dataset.flows, 97))
        _assert_identical(reference, result)


class TestStreamingAndTopK:
    def test_streaming_chunking_invariance(
        self, splidt_model, splidt_rules, small_dataset
    ):
        reference = replay_dataset(
            SpliDTDataPlane(splidt_model, splidt_rules, flow_slots=8192),
            small_dataset,
            engine="reference",
        )
        program = SpliDTDataPlane(splidt_model, splidt_rules, flow_slots=8192)
        result = _stream(StreamingEngine(program), _chunks(small_dataset.flows, 13))
        _assert_identical(reference, result)

    @pytest.fixture(scope="class")
    def topk_model(self, windowed3):
        return train_topk_model(windowed3, TopKConfig(depth=6, top_k=4))

    @pytest.mark.parametrize("chunking", (1, 7, None))
    def test_topk_microbatch(self, chunking, topk_model, small_dataset):
        reference = replay_dataset(
            TopKDataPlane(topk_model, flow_slots=8192),
            small_dataset,
            engine="reference",
        )
        program = TopKDataPlane(topk_model, flow_slots=8192)
        result = _stream(
            MicroBatchEngine(program, flush_flows=4), _chunks(small_dataset.flows, chunking)
        )
        _assert_identical(reference, result)

    def test_topk_sharded(self, topk_model, small_dataset):
        reference = replay_dataset(
            TopKDataPlane(topk_model, flow_slots=64), small_dataset, engine="reference"
        )
        engine = ShardedEngine(
            lambda: TopKDataPlane(topk_model, flow_slots=64), n_shards=2
        )
        result = _stream(engine, _chunks(small_dataset.flows, 64))
        _assert_identical(reference, result)


class TestProtocol:
    @pytest.fixture()
    def program(self, splidt_model, splidt_rules):
        return SpliDTDataPlane(splidt_model, splidt_rules, flow_slots=8192)

    def test_ingest_requires_open(self, program, small_dataset):
        engine = MicroBatchEngine(program)
        chunk = next(iter_packet_chunks(small_dataset.flows, 8))
        with pytest.raises(ServeError, match="open"):
            engine.ingest(chunk)

    def test_ingest_after_drain_rejected(self, program, small_dataset):
        engine = MicroBatchEngine(program).open()
        chunks = list(iter_packet_chunks(small_dataset.flows, 1000))
        engine.ingest(chunks[0])
        engine.drain()
        with pytest.raises(ServeError, match="drained"):
            engine.ingest(chunks[1])

    def test_out_of_order_stream_rejected(self, program, small_dataset):
        engine = MicroBatchEngine(program).open()
        chunks = list(iter_packet_chunks(small_dataset.flows, 100))
        engine.ingest(chunks[1])
        with pytest.raises(ServeError, match="time-ordered"):
            engine.ingest(chunks[0])

    def test_single_source_enforced(self, program, small_dataset):
        engine = MicroBatchEngine(program).open()
        engine.ingest(next(iter_packet_chunks(small_dataset.flows, 50)))
        with pytest.raises(ServeError, match="single-source"):
            engine.ingest(next(iter_packet_chunks(small_dataset.flows[:5], 50)))

    def test_backpressure(self, program, small_dataset):
        engine = MicroBatchEngine(program, backpressure=50, flush_flows=10_000).open()
        chunks = iter_packet_chunks(small_dataset.flows, 40)
        engine.ingest(next(chunks))
        with pytest.raises(BackpressureError):
            engine.ingest(next(chunks))

    def test_close_is_idempotent_and_drains(self, program, small_dataset):
        engine = MicroBatchEngine(program).open()
        for chunk in iter_packet_chunks(small_dataset.flows, 500):
            engine.ingest(chunk)
        result = engine.close()  # implicit drain
        assert engine.close() is result
        assert engine.result() is result
        assert len(result.verdicts) > 0

    def test_stats_roll_forward(self, program, small_dataset):
        engine = MicroBatchEngine(program, flush_flows=2).open()
        seen_packets = 0
        last_decided = 0
        for chunk in iter_packet_chunks(small_dataset.flows, 2000):
            engine.ingest(chunk)
            stats = engine.stats()
            seen_packets += chunk.n_packets
            assert stats.packets == seen_packets
            assert stats.flows_decided >= last_decided
            last_decided = stats.flows_decided
        engine.drain()
        stats = engine.stats()
        assert stats.engine == "microbatch"
        assert stats.buffered_packets == 0
        assert stats.flows_decided == len(engine.verdicts())
        assert 0.0 <= stats.accuracy <= 1.0
        assert stats.ttd["max"] >= stats.ttd["median"] >= 0.0

    def test_create_engine_dispatch(self, splidt_model, splidt_rules):
        factory = lambda: SpliDTDataPlane(splidt_model, splidt_rules, flow_slots=256)
        assert create_engine(factory, engine="streaming").name == "streaming"
        assert create_engine(factory, engine="microbatch").name == "microbatch"
        sharded = create_engine(factory, engine="sharded", shards=3)
        assert sharded.name == "sharded" and sharded.n_shards == 3
        with pytest.raises(ServeError, match="unknown serve engine"):
            create_engine(factory, engine="warp")
