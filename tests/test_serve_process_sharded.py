"""Parity and lifecycle tests for the process-sharded serving engine.

Extends the contract of ``tests/test_serve_engines.py`` to
:class:`repro.serve.ProcessShardedEngine`: verdicts, TTD arrays and
recirculation statistics after ``drain`` are **bit-identical** to the
reference interpreter — at 64-slot collision pressure, for truncated
streams, and under both the ``fork`` and ``spawn`` start methods — plus the
shared-memory teardown semantics: a worker crash mid-stream surfaces as a
``ServeError`` and releases the ``/dev/shm`` segment, and ``close()`` is
idempotent.
"""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro.dataplane import SpliDTDataPlane, replay_dataset
from repro.datasets.shm import SEGMENT_PREFIX
from repro.serve.ring import RING_PREFIX
from repro.datasets.streams import iter_packet_chunks
from repro.serve import ProcessShardedEngine, ServeError, StreamingEngine, create_engine
from test_serve_engines import _assert_identical, _chunks, _stream


class ProgramFactory:
    """Module-level (hence spawn-picklable) factory over the test fixtures."""

    def __init__(self, model, rules, flow_slots: int) -> None:
        self.model = model
        self.rules = rules
        self.flow_slots = flow_slots

    def __call__(self) -> SpliDTDataPlane:
        return SpliDTDataPlane(self.model, self.rules, flow_slots=self.flow_slots)


def _leaked_segments() -> list[str]:
    try:
        return [
            n
            for n in os.listdir("/dev/shm")
            if n.startswith(SEGMENT_PREFIX) or n.startswith(RING_PREFIX)
        ]
    except FileNotFoundError:  # non-POSIX-shm platform: nothing to check
        return []


class TestProcessShardedParity:
    """ProcessShardedEngine == reference, merged bit for bit across workers."""

    @pytest.mark.parametrize("workers", (2, 3))
    @pytest.mark.parametrize("flow_slots", (8192, 64))
    def test_parity_fork(self, workers, flow_slots, splidt_model, splidt_rules, small_dataset):
        reference = replay_dataset(
            SpliDTDataPlane(splidt_model, splidt_rules, flow_slots=flow_slots),
            small_dataset,
            engine="reference",
        )
        engine = ProcessShardedEngine(
            ProgramFactory(splidt_model, splidt_rules, flow_slots),
            workers=workers,
            flush_flows=4,
        )
        result = _stream(engine, _chunks(small_dataset.flows, 64))
        _assert_identical(reference, result)
        assert not _leaked_segments()

    @pytest.mark.skipif(
        "spawn" not in __import__("multiprocessing").get_all_start_methods(),
        reason="spawn start method unavailable",
    )
    def test_parity_spawn(self, splidt_model, splidt_rules, small_dataset):
        reference = replay_dataset(
            SpliDTDataPlane(splidt_model, splidt_rules, flow_slots=8192),
            small_dataset,
            engine="reference",
        )
        engine = ProcessShardedEngine(
            ProgramFactory(splidt_model, splidt_rules, 8192),
            workers=2,
            start_method="spawn",
            flush_flows=4,
        )
        result = _stream(engine, _chunks(small_dataset.flows, 128))
        _assert_identical(reference, result)
        assert not _leaked_segments()

    def test_streaming_children(self, splidt_model, splidt_rules, small_dataset):
        reference = replay_dataset(
            SpliDTDataPlane(splidt_model, splidt_rules, flow_slots=8192),
            small_dataset,
            engine="reference",
        )
        engine = ProcessShardedEngine(
            ProgramFactory(splidt_model, splidt_rules, 8192),
            workers=2,
            child_engine="streaming",
        )
        result = _stream(engine, _chunks(small_dataset.flows, 97))
        _assert_identical(reference, result)

    def test_truncated_stream_matches_reference_prefix(
        self, splidt_model, splidt_rules, small_dataset
    ):
        chunks = list(iter_packet_chunks(small_dataset.flows, 500))
        half = chunks[: len(chunks) // 2]
        reference = _stream(
            StreamingEngine(SpliDTDataPlane(splidt_model, splidt_rules, flow_slots=8192)),
            half,
        )
        engine = ProcessShardedEngine(
            ProgramFactory(splidt_model, splidt_rules, 8192), workers=2, flush_flows=4
        )
        result = _stream(engine, half)
        _assert_identical(reference, result)

    def test_mid_stream_stats_and_verdicts(self, splidt_model, splidt_rules, small_dataset):
        engine = ProcessShardedEngine(
            ProgramFactory(splidt_model, splidt_rules, 8192), workers=2, flush_flows=2
        ).open()
        last_decided = 0
        for chunk in iter_packet_chunks(small_dataset.flows, 2000):
            engine.ingest(chunk)
            stats = engine.stats()  # synchronous per-worker snapshot
            assert stats.engine == "sharded-mp"
            assert stats.flows_decided >= last_decided
            last_decided = stats.flows_decided
        result = engine.close()
        assert len(result.verdicts) == engine.stats().flows_decided
        assert engine.stats().buffered_packets == 0


class TestLifecycleAndTeardown:
    def test_worker_crash_surfaces_and_releases_segment(
        self, splidt_model, splidt_rules, small_dataset
    ):
        engine = ProcessShardedEngine(
            ProgramFactory(splidt_model, splidt_rules, 8192), workers=2, flush_flows=4
        ).open()
        chunks = list(iter_packet_chunks(small_dataset.flows, 64))
        engine.ingest(chunks[0])
        segment = engine._shared.layout.segment
        os.kill(engine._processes[0].pid, signal.SIGKILL)
        time.sleep(0.2)
        with pytest.raises(ServeError, match="exited|failed|torn down"):
            for chunk in chunks[1:]:
                engine.ingest(chunk)
            engine.drain()
        # The failure tore the session down: workers stopped, segment gone.
        assert engine._cleaned
        assert not os.path.exists(os.path.join("/dev/shm", segment))
        assert all(process.exitcode is not None for process in engine._processes)
        with pytest.raises(ServeError):
            engine.close()

    def test_close_is_idempotent_and_releases_everything(
        self, splidt_model, splidt_rules, small_dataset
    ):
        engine = ProcessShardedEngine(
            ProgramFactory(splidt_model, splidt_rules, 8192), workers=2
        ).open()
        for chunk in iter_packet_chunks(small_dataset.flows, 1000):
            engine.ingest(chunk)
        segment = engine._shared.layout.segment
        result = engine.close()
        assert engine.close() is result  # second close: cached, no worker I/O
        assert engine.result() is result
        assert not os.path.exists(os.path.join("/dev/shm", segment))
        assert all(process.exitcode is not None for process in engine._processes)

    def test_context_manager_cleans_up_on_error(
        self, splidt_model, splidt_rules, small_dataset
    ):
        engine = ProcessShardedEngine(
            ProgramFactory(splidt_model, splidt_rules, 8192), workers=2
        )
        with pytest.raises(RuntimeError, match="boom"):
            with engine:
                engine.ingest(next(iter_packet_chunks(small_dataset.flows, 64)))
                raise RuntimeError("boom")
        assert engine._cleaned
        assert not _leaked_segments()

    def test_empty_session(self, splidt_model, splidt_rules):
        engine = ProcessShardedEngine(
            ProgramFactory(splidt_model, splidt_rules, 8192), workers=2
        ).open()  # pre-binds the pool even before any traffic
        result = engine.close()  # no ingest: workers stop without attaching
        assert result.verdicts == {}
        assert all(p.exitcode == 0 for p in engine._processes)
        assert not _leaked_segments()

    def test_constructor_validation(self, splidt_model, splidt_rules):
        factory = ProgramFactory(splidt_model, splidt_rules, 256)
        with pytest.raises(ServeError, match="workers"):
            ProcessShardedEngine(factory, workers=0)
        with pytest.raises(ServeError, match="start method"):
            ProcessShardedEngine(factory, start_method="warp")
        with pytest.raises(ServeError, match="child engine"):
            ProcessShardedEngine(factory, child_engine="warp")

    def test_unpicklable_factory_rejected_with_actionable_error(
        self, splidt_model, splidt_rules, small_dataset
    ):
        # Lambdas fail pickling on the caller's thread with a pointer to
        # ProgramFactory — at open() (pre-bind), never silently in the
        # queue feeder thread.
        engine = ProcessShardedEngine(
            lambda: SpliDTDataPlane(splidt_model, splidt_rules, flow_slots=8192),
            workers=2,
        )
        with pytest.raises(ServeError, match="picklable"):
            engine.open()
        assert engine._cleaned
        assert not _leaked_segments()

    def test_create_engine_dispatch(self, splidt_model, splidt_rules):
        factory = ProgramFactory(splidt_model, splidt_rules, 256)
        engine = create_engine(factory, engine="sharded-mp", workers=3,
                               spawn_method="fork")
        assert engine.name == "sharded-mp"
        assert engine.workers == 3 and engine.start_method == "fork"
