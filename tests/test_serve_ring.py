"""Ring-transport fault injection, backpressure, and deterministic merge.

The SPSC ring transport (``repro.serve.ring``) moves the sharded-mp serving
path off ``multiprocessing.Queue``; this suite covers what the parity tests
cannot: the unit-level ring contract, crash semantics (a SIGKILLed worker
must surface as ``ServeError`` and leave **no** ``/dev/shm`` residue —
neither packet segments nor rings), full-ring backpressure with a 1-slot
ring, idempotent teardown, both start methods, and the deterministic-merge
guarantee (verdict streams must not depend on worker finish order, asserted
with an env-injected drain delay on one worker).
"""

from __future__ import annotations

import os
import signal
import time

import numpy as np
import pytest

from repro.dataplane import SpliDTDataPlane, replay_dataset
from repro.datasets.shm import SEGMENT_PREFIX
from repro.datasets.streams import iter_packet_chunks
from repro.serve import ProcessShardedEngine, ServeError
from repro.serve.process_sharded import DRAIN_SLEEP_ENV, TRANSPORT_ENV
from repro.serve.ring import (
    KIND_CHUNK,
    KIND_DRAIN,
    KIND_STOP,
    RING_PREFIX,
    RingFullError,
    SpscRing,
)
from test_serve_engines import _assert_identical, _stream
from test_serve_process_sharded import ProgramFactory, _leaked_segments


# ----------------------------------------------------------------------
# SpscRing unit contract
# ----------------------------------------------------------------------
class TestSpscRing:
    def test_roundtrip_preserves_kind_payload_and_sequence(self):
        with SpscRing.create(slots=4, span=16) as ring:
            ring.push(KIND_CHUNK, np.arange(5, dtype=np.int64))
            ring.push(KIND_DRAIN)
            kind, positions, seq = ring.pop()
            assert kind == KIND_CHUNK and seq == 0
            assert positions.dtype == np.intp
            assert positions.tolist() == [0, 1, 2, 3, 4]
            kind, positions, seq = ring.pop()
            assert kind == KIND_DRAIN and seq == 1 and positions.size == 0

    def test_wraparound_and_slot_reuse(self):
        with SpscRing.create(slots=2, span=4) as ring:
            for round_ in range(7):  # 7 messages through 2 slots
                ring.push(KIND_CHUNK, np.full(4, round_, dtype=np.int64))
                kind, positions, seq = ring.pop()
                assert seq == round_
                assert positions.tolist() == [round_] * 4
            assert ring.occupancy() == 0

    def test_pop_copies_before_release(self):
        # The popped positions must survive the producer overwriting the slot.
        with SpscRing.create(slots=1, span=4) as ring:
            ring.push(KIND_CHUNK, np.array([1, 2, 3], dtype=np.int64))
            _, first, _ = ring.pop()
            ring.push(KIND_CHUNK, np.array([9, 9, 9], dtype=np.int64))
            assert first.tolist() == [1, 2, 3]

    def test_oversized_payload_rejected(self):
        with SpscRing.create(slots=2, span=4) as ring:
            with pytest.raises(ValueError, match="span"):
                ring.push(KIND_CHUNK, np.arange(5, dtype=np.int64))

    def test_full_ring_raises_on_timeout_and_counts_stall(self):
        with SpscRing.create(slots=1, span=4) as ring:
            ring.push(KIND_STOP)
            with pytest.raises(RingFullError):
                ring.push(KIND_STOP, timeout=0.05)
            assert ring.producer_stalls() == 1
            assert ring.occupancy() == 1

    def test_empty_ring_pop_times_out_and_counts_stall(self):
        with SpscRing.create(slots=2, span=4) as ring:
            assert ring.pop(timeout=0.05) is None
            assert ring.consumer_stalls() == 1

    def test_poll_callback_can_abort_a_blocked_push(self):
        class Dead(RuntimeError):
            pass

        def poll():
            raise Dead

        with SpscRing.create(slots=1, span=4) as ring:
            ring.push(KIND_STOP)
            with pytest.raises(Dead):
                ring.push(KIND_STOP, poll=poll)

    def test_attach_sees_producer_messages(self):
        ring = SpscRing.create(slots=4, span=8)
        try:
            view = SpscRing.attach(ring.layout)
            ring.push(KIND_CHUNK, np.array([7, 8], dtype=np.int64))
            kind, positions, _ = view.pop()
            assert kind == KIND_CHUNK and positions.tolist() == [7, 8]
            view.close()
        finally:
            ring.unlink()
            ring.close()
        assert not _leaked_segments()

    def test_close_and_unlink_are_idempotent(self):
        ring = SpscRing.create(slots=2, span=4)
        name = ring.layout.segment
        ring.close()
        ring.close()  # double close: no-op
        assert ring.closed
        ring.unlink()
        ring.unlink()  # double unlink: no-op
        assert not os.path.exists(os.path.join("/dev/shm", name))

    def test_attacher_never_unlinks(self):
        ring = SpscRing.create(slots=2, span=4)
        view = SpscRing.attach(ring.layout)
        view.unlink()  # not the owner: must be a no-op
        assert os.path.exists(os.path.join("/dev/shm", ring.layout.segment))
        view.close()
        ring.unlink()
        ring.close()


# ----------------------------------------------------------------------
# Engine-level fault injection and backpressure
# ----------------------------------------------------------------------
class TestRingFaultInjection:
    @pytest.mark.parametrize("start_method", ["fork", "spawn"])
    def test_sigkilled_worker_surfaces_and_leaves_no_shm_residue(
        self, splidt_model, splidt_rules, small_dataset, start_method
    ):
        import multiprocessing

        if start_method not in multiprocessing.get_all_start_methods():
            pytest.skip(f"{start_method} start method unavailable")
        engine = ProcessShardedEngine(
            ProgramFactory(splidt_model, splidt_rules, 8192),
            workers=2,
            transport="ring",
            start_method=start_method,
            flush_flows=4,
        ).open()
        chunks = list(iter_packet_chunks(small_dataset.flows, 64))
        engine.ingest(chunks[0])
        residue_before = {
            engine._shared.layout.segment,
            *(ring.layout.segment for ring in engine._rings),
        }
        os.kill(engine._processes[0].pid, signal.SIGKILL)
        time.sleep(0.2)
        with pytest.raises(ServeError, match="exited|failed|torn down"):
            for chunk in chunks[1:]:
                engine.ingest(chunk)
            engine.drain()
        assert engine._cleaned
        for segment in residue_before:
            assert not os.path.exists(os.path.join("/dev/shm", segment))
        assert not _leaked_segments()
        with pytest.raises(ServeError):
            engine.close()

    def test_one_slot_ring_backpressure_end_to_end(
        self, splidt_model, splidt_rules, small_dataset
    ):
        # A 1-slot ring forces a producer stall on essentially every span:
        # the session must still complete with reference-identical results.
        reference = replay_dataset(
            SpliDTDataPlane(splidt_model, splidt_rules, flow_slots=8192),
            small_dataset,
            engine="reference",
        )
        engine = ProcessShardedEngine(
            ProgramFactory(splidt_model, splidt_rules, 8192),
            workers=2,
            transport="ring",
            ring_slots=1,
            ring_span=64,
        )
        result = _stream(engine, iter_packet_chunks(small_dataset.flows, 500))
        _assert_identical(reference, result)
        assert not _leaked_segments()

    def test_transport_env_default_and_override(
        self, splidt_model, splidt_rules, monkeypatch
    ):
        factory = ProgramFactory(splidt_model, splidt_rules, 256)
        monkeypatch.delenv(TRANSPORT_ENV, raising=False)
        assert ProcessShardedEngine(factory).transport == "ring"
        monkeypatch.setenv(TRANSPORT_ENV, "queue")
        assert ProcessShardedEngine(factory).transport == "queue"
        # An explicit constructor argument beats the environment.
        assert ProcessShardedEngine(factory, transport="ring").transport == "ring"
        monkeypatch.setenv(TRANSPORT_ENV, "warp")
        with pytest.raises(ServeError, match="transport"):
            ProcessShardedEngine(factory)

    def test_constructor_validation(self, splidt_model, splidt_rules):
        factory = ProgramFactory(splidt_model, splidt_rules, 256)
        with pytest.raises(ServeError, match="transport"):
            ProcessShardedEngine(factory, transport="warp")
        with pytest.raises(ServeError, match="ring_slots"):
            ProcessShardedEngine(factory, ring_slots=0)
        with pytest.raises(ServeError, match="ring_span"):
            ProcessShardedEngine(factory, ring_span=0)

    def test_double_close_and_post_close_stats(
        self, splidt_model, splidt_rules, small_dataset
    ):
        engine = ProcessShardedEngine(
            ProgramFactory(splidt_model, splidt_rules, 8192),
            workers=2,
            transport="ring",
        ).open()
        for chunk in iter_packet_chunks(small_dataset.flows, 1000):
            engine.ingest(chunk)
        result = engine.close()
        assert engine.close() is result  # idempotent: cached, no worker I/O
        stats = engine.stats()  # post-mortem: last captured ring counters
        assert stats.transport["ring_slots"] == engine.ring_slots
        assert stats.transport["ring_occupancy"] == 0.0
        assert not _leaked_segments()

    def test_ring_stats_surface_through_engine_stats(
        self, splidt_model, splidt_rules, small_dataset
    ):
        engine = ProcessShardedEngine(
            ProgramFactory(splidt_model, splidt_rules, 8192),
            workers=2,
            transport="ring",
        ).open()
        for chunk in iter_packet_chunks(small_dataset.flows, 2000):
            engine.ingest(chunk)
        stats = engine.stats()
        assert set(stats.transport) == {
            "ring_slots",
            "ring_occupancy",
            "ring_producer_stalls",
            "ring_consumer_stalls",
        }
        engine.close()
        # Queue transport reports no ring counters.
        queue_engine = ProcessShardedEngine(
            ProgramFactory(splidt_model, splidt_rules, 8192),
            workers=2,
            transport="queue",
        ).open()
        for chunk in iter_packet_chunks(small_dataset.flows, 2000):
            queue_engine.ingest(chunk)
        assert queue_engine.stats().transport == {}
        queue_engine.close()


# ----------------------------------------------------------------------
# Deterministic merge: drain order must not depend on worker finish order
# ----------------------------------------------------------------------
class TestDeterministicMerge:
    @pytest.mark.parametrize("transport", ["ring", "queue"])
    def test_verdict_stream_identical_with_a_slowed_worker(
        self, splidt_model, splidt_rules, small_dataset, monkeypatch, transport
    ):
        def run() -> list:
            engine = ProcessShardedEngine(
                ProgramFactory(splidt_model, splidt_rules, 8192),
                workers=3,
                transport=transport,
                flush_flows=2,
            )
            result = _stream(engine, iter_packet_chunks(small_dataset.flows, 700))
            # Insertion order of the merged dict IS the drained stream order.
            return [
                (fid, v.label, v.decided_at) for fid, v in result.verdicts.items()
            ]

        monkeypatch.delenv(DRAIN_SLEEP_ENV, raising=False)
        baseline = run()
        # Slow worker 2's drain reply: it now finishes last, but the merged
        # stream must be bit-identical because absorption is index-ordered.
        monkeypatch.setenv(DRAIN_SLEEP_ENV, "2:0.4")
        slowed = run()
        assert slowed == baseline
        monkeypatch.setenv(DRAIN_SLEEP_ENV, "0:0.4")
        slowed_first = run()
        assert slowed_first == baseline
