"""Parity suite for `InferenceEngine.swap_model` across all four engines.

The swap contract (see ``repro/serve/engine.py``):

* swapping to an *identical* model is fully invisible — verdicts, TTD
  arrays and merged recirculation counters match the no-swap session
  bit-for-bit, for any chunking, at collision pressure, and mid-micro-batch
  with buffered undecided flows;
* flows that began before the swap produce verdicts bit-identical to a
  no-swap replay of the **old** model, even when the successor is a
  different model;
* the pin/rebind decision is a pure function of the stream prefix, so the
  streaming, micro-batch, thread-sharded and process-sharded engines all
  partition flows across model epochs identically — the cross-engine parity
  contract survives the swap.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import core
from repro.core.range_marking import generate_rules, stacked_training_matrix
from repro.dataplane import SpliDTDataPlane, replay_dataset
from repro.serve import (
    MicroBatchEngine,
    ProcessShardedEngine,
    ServeError,
    ShardedEngine,
    StreamingEngine,
)
from test_serve_engines import _assert_identical, _chunks, _stream
from test_serve_process_sharded import ProgramFactory


@pytest.fixture(scope="module")
def alt_model(windowed3, splidt_config):
    """A second model (different training seed) to swap in mid-stream."""
    return core.train_partitioned_tree(windowed3, splidt_config, random_state=17)


@pytest.fixture(scope="module")
def alt_rules(alt_model, windowed3):
    return generate_rules(alt_model, stacked_training_matrix(windowed3, 3))


def _make_engine(kind, factory, *, flush_flows=4):
    if kind == "streaming":
        return StreamingEngine(factory())
    if kind == "microbatch":
        return MicroBatchEngine(factory(), flush_flows=flush_flows)
    if kind == "sharded":
        return ShardedEngine(factory, n_shards=2, flush_flows=flush_flows)
    if kind == "sharded-mp":
        return ProcessShardedEngine(factory, workers=2, flush_flows=flush_flows)
    raise AssertionError(kind)


def _stream_with_swaps(engine, chunks, swaps):
    """Stream ``chunks``, calling swap_model(factory) at given chunk indices.

    ``swaps`` maps chunk index -> program factory; the swap happens *before*
    the chunk with that index is ingested.  Returns (result, swap events).
    """
    engine.open()
    events = []
    for index, chunk in enumerate(chunks):
        if index in swaps:
            events.append(engine.swap_model(swaps[index]))
        engine.ingest(chunk)
    if len(chunks) in swaps:
        events.append(engine.swap_model(swaps[len(chunks)]))
    engine.drain()
    return engine.close(), events


ENGINES = ("streaming", "microbatch", "sharded", "sharded-mp")


class TestSameModelSwapInvisible:
    """Swapping in an identical model changes nothing, bit for bit."""

    @pytest.mark.parametrize("kind", ENGINES)
    @pytest.mark.parametrize("flow_slots", (8192, 64))
    def test_mid_stream_swap(
        self, kind, flow_slots, splidt_model, splidt_rules, small_dataset
    ):
        reference = replay_dataset(
            SpliDTDataPlane(splidt_model, splidt_rules, flow_slots=flow_slots),
            small_dataset,
            engine="reference",
        )
        factory = ProgramFactory(splidt_model, splidt_rules, flow_slots)
        chunks = _chunks(small_dataset.flows, 64)
        engine = _make_engine(kind, factory)
        result, events = _stream_with_swaps(
            engine, chunks, {len(chunks) // 2: factory}
        )
        _assert_identical(reference, result)
        assert len(events) == 1 and events[0].epoch == 1
        # 64 slots for 360 flows: the swap lands amid undecided collision
        # flows, which must pin their slots to the old program.
        if flow_slots == 64:
            assert events[0].pinned_slots > 0

    def test_swap_mid_micro_batch(self, splidt_model, splidt_rules, small_dataset):
        # A flush threshold the stream never reaches keeps every packet
        # buffered: the swap hits mid-batch with the whole backlog in flight.
        reference = replay_dataset(
            SpliDTDataPlane(splidt_model, splidt_rules, flow_slots=64),
            small_dataset,
            engine="reference",
        )
        factory = ProgramFactory(splidt_model, splidt_rules, 64)
        chunks = _chunks(small_dataset.flows, 64)
        engine = MicroBatchEngine(factory(), flush_flows=10_000)
        result, events = _stream_with_swaps(engine, chunks, {len(chunks) // 2: factory})
        _assert_identical(reference, result)
        assert events[0].buffered_packets > 0
        assert events[0].pinned_flows > 0

    @pytest.mark.parametrize("kind", ("streaming", "microbatch", "sharded"))
    def test_repeated_swaps(self, kind, splidt_model, splidt_rules, small_dataset):
        reference = replay_dataset(
            SpliDTDataPlane(splidt_model, splidt_rules, flow_slots=64),
            small_dataset,
            engine="reference",
        )
        factory = ProgramFactory(splidt_model, splidt_rules, 64)
        chunks = _chunks(small_dataset.flows, 64)
        third = max(1, len(chunks) // 3)
        engine = _make_engine(kind, factory)
        result, events = _stream_with_swaps(
            engine, chunks, {third: factory, 2 * third: factory}
        )
        _assert_identical(reference, result)
        assert [event.epoch for event in events] == [1, 2]

    def test_window_aligned_chunking(self, splidt_model, splidt_rules, small_dataset):
        reference = replay_dataset(
            SpliDTDataPlane(splidt_model, splidt_rules, flow_slots=8192),
            small_dataset,
            engine="reference",
        )
        factory = ProgramFactory(splidt_model, splidt_rules, 8192)
        chunks = _chunks(small_dataset.flows, "window")
        engine = MicroBatchEngine(factory(), flush_flows=4)
        result, _ = _stream_with_swaps(engine, chunks, {len(chunks) // 2: factory})
        _assert_identical(reference, result)


class TestCrossEngineParityAfterSwap:
    """All four engines partition flows across epochs identically."""

    @pytest.fixture(scope="class")
    def oracle(self, splidt_model, splidt_rules, alt_model, alt_rules, small_dataset):
        """Streaming-engine session with a real model change mid-stream."""
        chunks = _chunks(small_dataset.flows, 64)
        engine = StreamingEngine(
            SpliDTDataPlane(splidt_model, splidt_rules, flow_slots=64)
        )
        result, events = _stream_with_swaps(
            engine,
            chunks,
            {len(chunks) // 2: ProgramFactory(alt_model, alt_rules, 64)},
        )
        return result, events[0]

    @pytest.mark.parametrize("kind", ("microbatch", "sharded", "sharded-mp"))
    def test_engine_matches_streaming_oracle(
        self, kind, splidt_model, splidt_rules, alt_model, alt_rules,
        small_dataset, oracle
    ):
        oracle_result, oracle_event = oracle
        chunks = _chunks(small_dataset.flows, 64)
        engine = _make_engine(
            kind, ProgramFactory(splidt_model, splidt_rules, 64)
        )
        result, events = _stream_with_swaps(
            engine,
            chunks,
            {len(chunks) // 2: ProgramFactory(alt_model, alt_rules, 64)},
        )
        _assert_identical(oracle_result, result)
        assert events[0].started_flow_ids == oracle_event.started_flow_ids
        assert events[0].pinned_slots == oracle_event.pinned_slots

    def test_pre_swap_flows_match_old_model_replay(
        self, splidt_model, splidt_rules, alt_model, alt_rules, small_dataset, oracle
    ):
        """Flows that began before the swap == no-swap replay of the old model."""
        oracle_result, event = oracle
        old = replay_dataset(
            SpliDTDataPlane(splidt_model, splidt_rules, flow_slots=64),
            small_dataset,
            engine="reference",
        )
        assert event.flows_started == len(event.started_flow_ids) > 0
        checked = 0
        for flow_id in event.started_flow_ids:
            swapped = oracle_result.verdicts.get(flow_id)
            static = old.verdicts.get(flow_id)
            assert (swapped is None) == (static is None)
            if static is not None:
                assert swapped.label == static.label
                assert swapped.decided_at == static.decided_at
                assert swapped.first_packet_at == static.first_packet_at
                assert swapped.n_recirculations == static.n_recirculations
                assert swapped.early_exit == static.early_exit
                checked += 1
        assert checked > 0

    def test_post_swap_new_flows_use_new_model(
        self, splidt_model, splidt_rules, alt_model, alt_rules, small_dataset, oracle
    ):
        """Some post-swap flow verdict must come from the new model's replay."""
        oracle_result, event = oracle
        new = replay_dataset(
            SpliDTDataPlane(alt_model, alt_rules, flow_slots=64),
            small_dataset,
            engine="reference",
        )
        post = set(oracle_result.verdicts) - set(event.started_flow_ids)
        assert post, "expected flows that started after the swap"
        matching_new = sum(
            1
            for flow_id in post
            if flow_id in new.verdicts
            and oracle_result.verdicts[flow_id].label == new.verdicts[flow_id].label
        )
        assert matching_new > 0


class TestSwapProtocol:
    def test_swap_before_first_chunk_uses_new_model_throughout(
        self, splidt_model, splidt_rules, alt_model, alt_rules, small_dataset
    ):
        new_reference = replay_dataset(
            SpliDTDataPlane(alt_model, alt_rules, flow_slots=8192),
            small_dataset,
            engine="reference",
        )
        engine = MicroBatchEngine(
            SpliDTDataPlane(splidt_model, splidt_rules, flow_slots=8192),
            flush_flows=4,
        )
        chunks = _chunks(small_dataset.flows, 64)
        result, events = _stream_with_swaps(
            engine, chunks, {0: ProgramFactory(alt_model, alt_rules, 8192)}
        )
        _assert_identical(new_reference, result)
        assert events[0].flows_started == 0
        assert events[0].pinned_slots == 0

    def test_swap_requires_open_state(self, splidt_model, splidt_rules, small_dataset):
        factory = ProgramFactory(splidt_model, splidt_rules, 8192)
        engine = MicroBatchEngine(factory())
        with pytest.raises(ServeError, match="created"):
            engine.swap_model(factory)
        engine.open()
        for chunk in _chunks(small_dataset.flows, None):
            engine.ingest(chunk)
        engine.drain()
        with pytest.raises(ServeError, match="drained"):
            engine.swap_model(factory)
        engine.close()

    def test_swap_events_recorded(self, splidt_model, splidt_rules, small_dataset):
        factory = ProgramFactory(splidt_model, splidt_rules, 8192)
        engine = MicroBatchEngine(factory(), flush_flows=4)
        chunks = _chunks(small_dataset.flows, 64)
        _, events = _stream_with_swaps(engine, chunks, {len(chunks) // 2: factory})
        assert engine.swap_events == events
        event = events[0]
        assert event.latency_s >= 0.0
        assert np.isfinite(event.watermark)
        assert event.flows_started == len(event.started_flow_ids)

    def test_table_size_mismatch_rejected(
        self, splidt_model, splidt_rules, small_dataset
    ):
        engine = MicroBatchEngine(
            SpliDTDataPlane(splidt_model, splidt_rules, flow_slots=8192),
            flush_flows=4,
        ).open()
        for chunk in _chunks(small_dataset.flows, 64)[:2]:
            engine.ingest(chunk)
        with pytest.raises(ServeError, match="table size"):
            engine.swap_model(ProgramFactory(splidt_model, splidt_rules, 64))
        engine.close()

    def test_stats_absorb_both_epochs(self, splidt_model, splidt_rules, small_dataset):
        factory = ProgramFactory(splidt_model, splidt_rules, 8192)
        engine = MicroBatchEngine(factory(), flush_flows=4)
        chunks = _chunks(small_dataset.flows, 64)
        result, _ = _stream_with_swaps(engine, chunks, {len(chunks) // 2: factory})
        stats = engine.stats()
        assert stats.flows_decided == len(result.verdicts)
        assert stats.buffered_packets == 0
        assert stats.packets == sum(chunk.n_packets for chunk in chunks)
