"""Unit tests for CRC32 flow hashing and the flow indexer."""

from __future__ import annotations

import pytest

from repro.datasets.flows import FiveTuple
from repro.switch.hashing import (
    FlowIndexer,
    crc32,
    crc32_reference,
    hash_five_tuple,
    register_index,
)


class TestCrc32:
    def test_known_vector(self):
        # CRC-32 of "123456789" is the classic check value 0xCBF43926.
        assert crc32(b"123456789") == 0xCBF43926

    def test_empty_input(self):
        assert crc32(b"") == 0

    def test_matches_reference_implementation(self):
        for data in (b"", b"a", b"hello world", bytes(range(32))):
            assert crc32(data) == crc32_reference(data)

    def test_deterministic(self):
        five_tuple = FiveTuple(0x0A000001, 0xC0A80001, 1234, 443, 6)
        assert hash_five_tuple(five_tuple) == hash_five_tuple(five_tuple)

    def test_different_flows_usually_differ(self):
        a = hash_five_tuple(FiveTuple(1, 2, 3, 4, 6))
        b = hash_five_tuple(FiveTuple(1, 2, 3, 5, 6))
        assert a != b


class TestRegisterIndex:
    def test_within_table(self):
        five_tuple = FiveTuple(1, 2, 3, 4, 6)
        for size in (1, 7, 1024, 65536):
            assert 0 <= register_index(five_tuple, size) < size

    def test_invalid_table_size(self):
        with pytest.raises(ValueError):
            register_index(FiveTuple(1, 2, 3, 4, 6), 0)


class TestFlowIndexer:
    def test_same_flow_same_slot(self):
        indexer = FlowIndexer(1024)
        five_tuple = FiveTuple(1, 2, 3, 4, 6)
        assert indexer.index_for(five_tuple) == indexer.index_for(five_tuple)

    def test_no_collision_counted_for_same_flow(self):
        indexer = FlowIndexer(1024)
        five_tuple = FiveTuple(1, 2, 3, 4, 6)
        indexer.index_for(five_tuple)
        indexer.index_for(five_tuple)
        assert indexer.collisions == 0

    def test_collisions_detected_with_tiny_table(self):
        indexer = FlowIndexer(1)
        indexer.index_for(FiveTuple(1, 2, 3, 4, 6))
        indexer.index_for(FiveTuple(9, 9, 9, 9, 17))
        assert indexer.collisions == 1

    def test_release_frees_slot(self):
        indexer = FlowIndexer(1)
        a = FiveTuple(1, 2, 3, 4, 6)
        b = FiveTuple(9, 9, 9, 9, 17)
        indexer.index_for(a)
        indexer.release(a)
        indexer.index_for(b)
        assert indexer.collisions == 0

    def test_occupancy(self):
        indexer = FlowIndexer(10)
        indexer.index_for(FiveTuple(1, 2, 3, 4, 6))
        assert indexer.occupancy == pytest.approx(0.1)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            FlowIndexer(0)
