"""Unit tests for the RMT pipeline container, MATs, PHV and recirculation."""

from __future__ import annotations

import pytest

from repro.datasets.flows import FiveTuple, Packet
from repro.switch.mat import ExactMatchEntry, ExactMatchTable, Stage
from repro.switch.phv import make_control_phv, make_data_phv
from repro.switch.pipeline import Pipeline
from repro.switch.recirculation import RecirculationChannel
from repro.switch.targets import BLUEFIELD3, TOFINO1, TOFINO2, TRIDENT4, get_target
from repro.switch.tcam import TcamTable


class TestTargets:
    def test_builtin_targets(self):
        assert get_target("tofino1") is TOFINO1
        assert get_target("Tofino2") is TOFINO2
        assert get_target("TRIDENT4") is TRIDENT4
        assert get_target("bluefield3") is BLUEFIELD3

    def test_unknown_target(self):
        with pytest.raises(KeyError):
            get_target("tofino9")

    def test_tofino1_budgets_match_paper(self):
        assert TOFINO1.n_stages == 12
        assert TOFINO1.tcam_bits == pytest.approx(6.4e6)
        assert TOFINO1.recirculation_bps == pytest.approx(100e9)
        assert TOFINO1.max_mats_per_stage == 16

    def test_tofino2_larger_than_tofino1(self):
        assert TOFINO2.n_stages > TOFINO1.n_stages
        assert TOFINO2.tcam_bits > TOFINO1.tcam_bits


class TestExactMatchTable:
    def test_add_and_lookup(self):
        table = ExactMatchTable(name="ops", key_fields={"sid": 8})
        table.add_entry(ExactMatchEntry(fields={"sid": 3}, action="use_max"))
        assert table.lookup({"sid": 3}).action == "use_max"
        assert table.lookup({"sid": 4}) is None

    def test_unknown_field_rejected(self):
        table = ExactMatchTable(name="ops", key_fields={"sid": 8})
        with pytest.raises(ValueError):
            table.add_entry(ExactMatchEntry(fields={"oops": 1}, action="a"))

    def test_memory_accounting(self):
        table = ExactMatchTable(name="ops", key_fields={"sid": 8, "flag": 8})
        table.add_entry(ExactMatchEntry(fields={"sid": 1, "flag": 0}, action="a"))
        assert table.key_width_bits == 16
        assert table.memory_bits() == 16 + 32


class TestStage:
    def test_mat_budget_enforced(self):
        stage = Stage(index=0, max_mats=2)
        stage.add_table(ExactMatchTable(name="a", key_fields={"k": 8}))
        stage.add_table(ExactMatchTable(name="b", key_fields={"k": 8}))
        with pytest.raises(ResourceWarning):
            stage.add_table(ExactMatchTable(name="c", key_fields={"k": 8}))


class TestPhv:
    def test_data_phv(self):
        phv = make_data_phv(FiveTuple(1, 2, 3, 4, 6), Packet(timestamp=0.0, size=100))
        assert not phv.is_control
        assert phv.get("sid") == 0

    def test_control_phv(self):
        phv = make_control_phv(FiveTuple(1, 2, 3, 4, 6), next_sid=5, timestamp=1.0)
        assert phv.is_control
        assert phv.get("next_sid") == 5
        assert phv.packet.size == 64

    def test_metadata_round_trip(self):
        phv = make_data_phv(FiveTuple(1, 2, 3, 4, 6), Packet(timestamp=0.0, size=100))
        phv.set("mark_0", 7)
        assert phv.get("mark_0") == 7
        assert phv.bits_used() > 0


class TestRecirculationChannel:
    def test_submit_and_ready(self):
        channel = RecirculationChannel(latency=0.001)
        phv = make_control_phv(FiveTuple(1, 2, 3, 4, 6), next_sid=2, timestamp=1.0)
        channel.submit(phv, timestamp=1.0)
        assert channel.pending == 1
        assert channel.ready(1.0005) == []
        released = channel.ready(1.002)
        assert len(released) == 1
        assert channel.pending == 0

    def test_bandwidth_accounting(self):
        channel = RecirculationChannel()
        for i in range(10):
            phv = make_control_phv(FiveTuple(1, 2, 3, 4, 6), next_sid=2, timestamp=float(i))
            channel.submit(phv, timestamp=float(i))
        assert channel.packets_recirculated == 10
        assert channel.bytes_recirculated == 640
        assert channel.mean_bandwidth_bps() == pytest.approx(640 * 8 / 9.0)
        assert 0 <= channel.utilisation() < 1

    def test_drain(self):
        channel = RecirculationChannel()
        phv = make_control_phv(FiveTuple(1, 2, 3, 4, 6), next_sid=2, timestamp=0.0)
        channel.submit(phv, 0.0)
        assert len(channel.drain()) == 1
        assert channel.pending == 0


class TestPipeline:
    def test_placement_and_report_fits(self):
        pipeline = Pipeline(TOFINO1)
        pipeline.allocate_register("sid", size=1024, width=8, stage=0)
        pipeline.place_table(TcamTable(name="m", key_fields={"k": 32}), stage=1)
        report = pipeline.resource_report()
        assert report.fits
        assert report.stages_used == 2
        assert report.register_bits_used == 1024 * 8

    def test_register_over_budget_detected(self):
        pipeline = Pipeline(TOFINO1)
        # One stage can hold register_bits_per_stage bits; exceed it.
        size = int(TOFINO1.register_bits_per_stage // 32) + 10
        pipeline.allocate_register("big", size=size, width=32, stage=0)
        report = pipeline.resource_report()
        assert not report.fits
        assert any("stage 0" in violation for violation in report.violations)

    def test_tcam_over_budget_detected(self):
        pipeline = Pipeline(TOFINO1)
        table = TcamTable(name="huge", key_fields={"k": 512})
        from repro.switch.tcam import TcamEntry, TernaryMatch
        for i in range(7000):
            table.add_entry(TcamEntry(fields={"k": TernaryMatch(i, 0xFFFF)}, priority=i, action="a"))
        pipeline.place_table(table, stage=0)
        assert not pipeline.resource_report().fits

    def test_invalid_stage_index(self):
        pipeline = Pipeline(TOFINO1)
        with pytest.raises(IndexError):
            pipeline.place_table(TcamTable(name="t", key_fields={"k": 8}), stage=99)

    def test_stages_used_counts_registers_and_tables(self):
        pipeline = Pipeline(TOFINO1)
        pipeline.allocate_register("a", size=16, width=8, stage=2)
        pipeline.place_table(ExactMatchTable(name="t", key_fields={"k": 8}), stage=5)
        assert pipeline.stages_used() == 2
