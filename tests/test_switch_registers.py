"""Unit tests for register arrays and the register file."""

from __future__ import annotations

import pytest

from repro.switch.registers import RegisterArray, RegisterFile


class TestRegisterArray:
    def test_initially_zero(self):
        array = RegisterArray(name="r", size=8, width=32)
        assert array.read(0) == 0.0
        assert array.read(7) == 0.0

    def test_write_and_read(self):
        array = RegisterArray(name="r", size=4, width=32)
        array.write(2, 123.0)
        assert array.read(2) == 123.0

    def test_saturating_write(self):
        array = RegisterArray(name="r", size=2, width=8)
        array.write(0, 300.0)
        assert array.read(0) == 255.0

    def test_negative_clamped_to_zero(self):
        array = RegisterArray(name="r", size=2, width=8)
        array.write(0, -5.0)
        assert array.read(0) == 0.0

    def test_add_saturates(self):
        array = RegisterArray(name="r", size=1, width=4)
        array.write(0, 10)
        assert array.add(0, 100) == 15

    def test_maximum_update(self):
        array = RegisterArray(name="r", size=1, width=16)
        array.write(0, 10)
        assert array.maximum(0, 5) == 10
        assert array.maximum(0, 50) == 50

    def test_clear(self):
        array = RegisterArray(name="r", size=2, width=16)
        array.write(1, 9)
        array.clear(1)
        assert array.read(1) == 0

    def test_clear_all(self):
        array = RegisterArray(name="r", size=3, width=16)
        for i in range(3):
            array.write(i, 7)
        array.clear_all()
        assert all(array.read(i) == 0 for i in range(3))

    def test_out_of_range_index(self):
        array = RegisterArray(name="r", size=2, width=16)
        with pytest.raises(IndexError):
            array.read(2)
        with pytest.raises(IndexError):
            array.write(-1, 0)

    def test_total_bits(self):
        assert RegisterArray(name="r", size=100, width=32).total_bits == 3200

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RegisterArray(name="r", size=0, width=32)
        with pytest.raises(ValueError):
            RegisterArray(name="r", size=1, width=0)
        with pytest.raises(ValueError):
            RegisterArray(name="r", size=1, width=128)

    def test_access_counters(self):
        array = RegisterArray(name="r", size=2, width=16)
        array.write(0, 1)
        array.read(0)
        array.read(1)
        assert array.writes == 1
        assert array.reads == 2


class TestRegisterFile:
    def test_allocate_and_lookup(self):
        registers = RegisterFile()
        registers.allocate("sid", size=16, width=8, stage=0)
        assert "sid" in registers
        assert registers["sid"].width == 8

    def test_duplicate_name_rejected(self):
        registers = RegisterFile()
        registers.allocate("a", size=4, width=8)
        with pytest.raises(ValueError):
            registers.allocate("a", size=4, width=8)

    def test_total_bits_and_per_flow_bits(self):
        registers = RegisterFile()
        registers.allocate("a", size=10, width=8, stage=0)
        registers.allocate("b", size=10, width=32, stage=1)
        assert registers.total_bits == 10 * 8 + 10 * 32
        assert registers.bits_per_flow() == 40

    def test_stages_used(self):
        registers = RegisterFile()
        registers.allocate("a", size=4, width=8, stage=0)
        registers.allocate("b", size=4, width=8, stage=3)
        assert registers.stages_used() == {0, 3}

    def test_clear_flow_selected_arrays(self):
        registers = RegisterFile()
        registers.allocate("keep", size=4, width=8)
        registers.allocate("clear", size=4, width=8)
        registers["keep"].write(1, 5)
        registers["clear"].write(1, 5)
        registers.clear_flow(1, names=["clear"])
        assert registers["keep"].read(1) == 5
        assert registers["clear"].read(1) == 0
