"""Unit tests for the TCAM model and range-to-ternary expansion."""

from __future__ import annotations

import pytest

from repro.switch.tcam import TcamEntry, TcamTable, TernaryMatch, range_to_ternary


class TestTernaryMatch:
    def test_exact_match(self):
        match = TernaryMatch(value=5, mask=0xFF)
        assert match.matches(5)
        assert not match.matches(4)

    def test_wildcard_bits(self):
        match = TernaryMatch(value=0b1000, mask=0b1000)
        assert match.matches(0b1000)
        assert match.matches(0b1111)
        assert not match.matches(0b0111)

    def test_full_wildcard(self):
        match = TernaryMatch(value=0, mask=0)
        assert match.matches(12345)


class TestRangeToTernary:
    def _covered(self, matches, width):
        return {v for v in range(2**width) if any(m.matches(v) for m in matches)}

    @pytest.mark.parametrize(
        "low,high,width",
        [(0, 255, 8), (0, 0, 8), (255, 255, 8), (3, 17, 8), (5, 200, 8), (0, 127, 8),
         (1, 14, 4), (7, 9, 4), (2, 13, 4)],
    )
    def test_expansion_covers_exactly_the_range(self, low, high, width):
        matches = range_to_ternary(low, high, width)
        assert self._covered(matches, width) == set(range(low, high + 1))

    def test_empty_range(self):
        assert range_to_ternary(10, 5, 8) == []

    def test_full_range_single_entry(self):
        matches = range_to_ternary(0, 255, 8)
        assert len(matches) == 1
        assert matches[0].mask == 0

    def test_single_value_single_entry(self):
        matches = range_to_ternary(42, 42, 8)
        assert len(matches) == 1

    def test_entry_count_bounded_by_2w(self):
        # Classic result: a w-bit range needs at most 2w - 2 prefixes.
        width = 8
        matches = range_to_ternary(1, 254, width)
        assert len(matches) <= 2 * width

    def test_values_clipped_to_width(self):
        matches = range_to_ternary(0, 10_000, 8)
        assert self._covered(matches, 8) == set(range(0, 256))

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            range_to_ternary(0, 1, 0)


class TestTcamTable:
    def _table(self) -> TcamTable:
        table = TcamTable(name="t", key_fields={"value": 8})
        table.add_entry(
            TcamEntry(fields={"value": TernaryMatch(0, 0xF0)}, priority=1, action="low")
        )
        table.add_entry(
            TcamEntry(fields={"value": TernaryMatch(0, 0)}, priority=0, action="default")
        )
        return table

    def test_priority_order(self):
        table = self._table()
        assert table.lookup({"value": 5}).action == "low"
        assert table.lookup({"value": 200}).action == "default"

    def test_miss_returns_none(self):
        table = TcamTable(name="t", key_fields={"value": 8})
        assert table.lookup({"value": 1}) is None

    def test_unknown_field_rejected(self):
        table = TcamTable(name="t", key_fields={"value": 8})
        with pytest.raises(ValueError):
            table.add_entry(TcamEntry(fields={"other": TernaryMatch(0, 0)}, priority=0, action="a"))

    def test_memory_accounting(self):
        table = self._table()
        assert table.key_width_bits == 8
        assert table.memory_bits(entry_overhead_bits=16) == (2 * 8 + 16) * 2

    def test_lookup_statistics(self):
        table = self._table()
        table.lookup({"value": 5})
        table.lookup({"value": 200})
        assert table.lookups == 2
        assert table.hits == 2

    def test_missing_key_field_no_match(self):
        table = self._table()
        assert table.lookup({}) is None
