#!/usr/bin/env python3
"""Documentation checks: relative links resolve, marked snippets run.

Stdlib-only so CI (and `tests/test_docs.py`) can run it anywhere:

* ``--links`` — every relative markdown link in ``README.md`` and
  ``docs/*.md`` must point at an existing file or directory (anchors are
  stripped; external ``http(s)``/``mailto`` links are skipped — no network).
* ``--snippets`` — every ```` ```bash ```` fence *immediately preceded* by an
  ``<!-- docs-smoke -->`` comment is executed line by line with the
  repository's ``src/`` on ``PYTHONPATH``, so the quickstart commands in the
  docs cannot rot.  Backslash continuations are joined; ``#`` comments are
  ignored.  A marked ```` ```python ```` fence is executed as one program
  via ``python -c`` instead, so API examples stay runnable too.

Exit code 0 when everything passes; 1 with a report otherwise.
"""

from __future__ import annotations

import argparse
import os
import re
import shlex
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Markdown files whose links are checked.
LINK_FILES = ("README.md", "docs")

#: Files whose marked snippets are executed.
SNIPPET_FILES = (
    "docs/pipeline.md",
    "docs/serving.md",
    "docs/scenarios.md",
    "docs/performance.md",
)

#: Marker that opts a fenced bash block into execution.
SMOKE_MARKER = "<!-- docs-smoke -->"

_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def _markdown_files() -> list[Path]:
    files: list[Path] = []
    for entry in LINK_FILES:
        path = REPO_ROOT / entry
        if path.is_dir():
            files.extend(sorted(path.glob("*.md")))
        elif path.is_file():
            files.append(path)
    return files


def check_links() -> list[str]:
    """Broken relative links, as ``file: target`` strings."""
    problems: list[str] = []
    for path in _markdown_files():
        for target in _LINK_RE.findall(path.read_text()):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            resolved = (path.parent / target.split("#", 1)[0]).resolve()
            if not resolved.exists():
                problems.append(f"{path.relative_to(REPO_ROOT)}: broken link -> {target}")
    return problems


def _smoke_snippets(path: Path) -> list[tuple[str, list[str]]]:
    """The marked blocks of ``path`` as ``(language, commands)`` pairs.

    Bash blocks become lists of joined command lines; python blocks become a
    single-element list holding the whole program source.
    """
    lines = path.read_text().splitlines()
    snippets: list[tuple[str, list[str]]] = []
    index = 0
    while index < len(lines):
        if lines[index].strip() == SMOKE_MARKER:
            fence = index + 1
            if fence < len(lines) and lines[fence].strip().startswith("```"):
                language = lines[fence].strip().lstrip("`").strip() or "bash"
                block: list[str] = []
                cursor = fence + 1
                while cursor < len(lines) and not lines[cursor].strip().startswith("```"):
                    block.append(lines[cursor])
                    cursor += 1
                if language == "python":
                    source = "\n".join(block).strip()
                    if source:
                        snippets.append((language, [source]))
                else:
                    commands: list[str] = []
                    pending = ""
                    for raw in block:
                        line = pending + raw.strip()
                        if line.endswith("\\"):
                            pending = line[:-1] + " "
                            continue
                        pending = ""
                        if line and not line.startswith("#"):
                            commands.append(line)
                    if commands:
                        snippets.append((language, commands))
                index = cursor
        index += 1
    return snippets


def run_snippets() -> list[str]:
    """Execute every marked snippet; returns failures as readable strings."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_ROOT / "src")] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    problems: list[str] = []
    total = 0
    for entry in SNIPPET_FILES:
        path = REPO_ROOT / entry
        snippets = _smoke_snippets(path)
        if not snippets:
            problems.append(f"{entry}: no {SMOKE_MARKER} snippets found "
                            "(the docs-smoke coverage regressed)")
            continue
        for language, commands in snippets:
            for command in commands:
                total += 1
                if language == "python":
                    label = command.splitlines()[0] + " ..."
                    argv = [sys.executable, "-c", command]
                else:
                    label = command
                    argv = shlex.split(command)
                print(f"[docs-smoke] {entry}: {label}", flush=True)
                try:
                    result = subprocess.run(
                        argv,
                        cwd=REPO_ROOT,
                        env=env,
                        capture_output=True,
                        text=True,
                        timeout=600,
                    )
                except subprocess.TimeoutExpired:
                    problems.append(f"{entry}: `{label}` timed out after 600s")
                    continue
                if result.returncode != 0:
                    problems.append(
                        f"{entry}: `{label}` exited {result.returncode}\n"
                        f"stdout:\n{result.stdout}\nstderr:\n{result.stderr}"
                    )
    print(f"[docs-smoke] ran {total} command(s)")
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--links", action="store_true", help="check relative links")
    parser.add_argument("--snippets", action="store_true",
                        help="execute docs-smoke snippets")
    args = parser.parse_args(argv)
    if not (args.links or args.snippets):
        args.links = True  # default: the cheap check

    problems: list[str] = []
    if args.links:
        problems += check_links()
    if args.snippets:
        problems += run_snippets()

    if problems:
        print("\n".join(problems), file=sys.stderr)
        return 1
    print("docs checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
