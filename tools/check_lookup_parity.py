"""Assert two saved runs replay to bit-identical verdict digests.

CI uses this to hold ``python -m repro run --lookup scan`` and
``--lookup lut`` to the same verdicts::

    python -m repro run --dataset D3 --n-flows 200 --lookup scan --out run-scan
    python -m repro run --dataset D3 --n-flows 200 --lookup lut  --out run-lut
    python tools/check_lookup_parity.py run-scan run-lut

Each run directory is reloaded and replayed (generation is deterministic,
so the replays reproduce the saved runs exactly); every ``FlowVerdict``
field and the recirculation statistics must match across the two.
"""

from __future__ import annotations

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 2:
        print("usage: check_lookup_parity.py <run-dir-a> <run-dir-b>",
              file=sys.stderr)
        return 2

    from repro.pipeline.artifacts import load_run

    first, second = (load_run(path).replay() for path in argv)
    if first is None or second is None:
        print("error: one of the runs has no data-plane replay", file=sys.stderr)
        return 1
    if set(first.verdicts) != set(second.verdicts):
        print(f"error: verdict sets differ ({len(first.verdicts)} vs "
              f"{len(second.verdicts)} flows)", file=sys.stderr)
        return 1
    for flow_id, verdict in first.verdicts.items():
        other = second.verdicts[flow_id]
        fields = ("label", "decided_at", "first_packet_at",
                  "n_recirculations", "early_exit")
        for field in fields:
            if getattr(verdict, field) != getattr(other, field):
                print(f"error: flow {flow_id} differs on {field}: "
                      f"{getattr(verdict, field)} != {getattr(other, field)}",
                      file=sys.stderr)
                return 1
    if first.recirculation != second.recirculation:
        print(f"error: recirculation statistics differ: "
              f"{first.recirculation} != {second.recirculation}",
              file=sys.stderr)
        return 1
    print(f"verdict digests identical for {len(first.verdicts)} flows "
          f"({argv[0]} vs {argv[1]})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
