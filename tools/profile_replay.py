"""cProfile the vectorized replay of a bundled dataset.

Future perf PRs should start from data, not intuition: this tool trains and
compiles one SpliDT experiment, replays its traffic through the selected
engine under cProfile, and prints the top-N hot spots by cumulative time.

Usage (from the repository root)::

    PYTHONPATH=src python tools/profile_replay.py
    PYTHONPATH=src python tools/profile_replay.py --dataset D6 --flows 800 \
        --depth 18 --partitions 2 --lookup scan --top 30
    PYTHONPATH=src python tools/profile_replay.py --engine reference --sort tottime
    PYTHONPATH=src python tools/profile_replay.py --engine fused --json profile.json
    PYTHONPATH=src python tools/profile_replay.py --online --swap-at 0.5
    PYTHONPATH=src python tools/profile_replay.py --scenario ddos-eviction-smoke

The profiled region is *only* the replay (the program is built and the
lookup plane compiled beforehand), so the report shows the steady-state
serving cost — the part the paper claims runs at line rate.

``--scenario <name>`` profiles the replay of a catalog workload scenario
(:mod:`repro.scenarios`) instead of the clean dataset: the model still
trains on clean traffic, but the profiled replay carries the scenario's
adversarial layers and runs under its eviction policy — the hot path under
attack.

``--online`` profiles a serve-path session instead: the stream runs through
a :mod:`repro.serve` engine and a same-model ``swap_model`` is forced at the
``--swap-at`` fraction of the stream, so the report includes the swap's cost
— its build latency and how many packets were in flight when it landed.

``--json`` writes a machine-readable summary (run parameters, elapsed time,
throughput, kernel backend, swap metrics when ``--online``, and the top-N
hot spots) so CI can diff the hot path of two revisions instead of
eyeballing pstats text.
"""

from __future__ import annotations

import argparse
import cProfile
import json
import pstats
import sys
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="cProfile the vectorized replay of a bundled dataset"
    )
    parser.add_argument("--dataset", default="D3", help="dataset key (default D3)")
    parser.add_argument("--flows", type=int, default=600,
                        help="flows to generate and replay (default 600)")
    parser.add_argument("--seed", type=int, default=7, help="dataset/training seed")
    parser.add_argument("--depth", type=int, default=12, help="tree depth D")
    parser.add_argument("--k", type=int, default=4, help="features per subtree")
    parser.add_argument("--partitions", type=int, default=3, help="partitions")
    parser.add_argument("--engine", default="vectorized",
                        choices=("fused", "vectorized", "reference"),
                        help="replay engine")
    parser.add_argument("--lookup", default="lut", choices=("lut", "scan"),
                        help="model-table lookup strategy")
    parser.add_argument("--scenario",
                        help="profile the replay of a catalog workload "
                             "scenario (see `python -m repro scenario list`) "
                             "instead of the clean dataset")
    parser.add_argument("--flow-slots", type=int, default=None, dest="flow_slots",
                        help="register slots (default 65536; scenarios often "
                             "want fewer to create table pressure)")
    parser.add_argument("--online", action="store_true",
                        help="profile a serve-path session with a forced "
                             "mid-stream model swap instead of a plain replay")
    parser.add_argument("--swap-at", type=float, default=0.5,
                        help="stream fraction at which --online forces the "
                             "swap (default 0.5)")
    parser.add_argument("--serve-engine", default="microbatch",
                        choices=("streaming", "microbatch", "sharded",
                                 "sharded-mp"),
                        help="serve engine used by --online "
                             "(default microbatch)")
    parser.add_argument("--chunk-size", type=int, default=256,
                        help="packets per ingested chunk in --online mode "
                             "(default 256)")
    parser.add_argument("--top", type=int, default=25,
                        help="hot spots to print (default 25)")
    parser.add_argument("--sort", default="cumulative",
                        choices=("cumulative", "tottime", "ncalls"),
                        help="pstats sort key (default cumulative)")
    parser.add_argument("--out", help="also dump raw pstats data to this file")
    parser.add_argument("--json", dest="json_out",
                        help="write a machine-readable profile summary to this "
                             "file ('-' for stdout)")
    args = parser.parse_args(argv)
    if args.online and not 0.0 < args.swap_at < 1.0:
        parser.error("--swap-at must be strictly between 0 and 1")
    if args.online and args.scenario:
        parser.error("--online and --scenario are mutually exclusive")

    from repro.dataplane import replay_dataset
    from repro.dataplane.kernels import backend as kernel_backend
    from repro.pipeline import Experiment, ExperimentSpec

    scenario = None
    if args.scenario:
        from repro.scenarios import get_workload_scenario

        scenario = get_workload_scenario(args.scenario)

    spec = ExperimentSpec(
        dataset=scenario.dataset if scenario else args.dataset,
        n_flows=args.flows,
        seed=scenario.seed if scenario else args.seed,
        depth=args.depth,
        features_per_subtree=args.k,
        n_partitions=args.partitions,
        lookup=args.lookup,
        replay_flows=None,
        flow_slots=args.flow_slots or 65536,
        scenario=scenario,
    ).validate()

    experiment = Experiment(spec)
    print(f"preparing {spec.dataset} ({spec.n_flows} flows), training "
          f"D={spec.depth} k={spec.features_per_subtree} "
          f"P={spec.n_partitions} ...", flush=True)
    started = time.perf_counter()
    model, rules = experiment.train(), experiment.compile()
    profiler = cProfile.Profile()
    swap_event = None
    workload = None

    if scenario is not None:
        from repro.dataplane.runtime import build_replay_result
        from repro.scenarios import build_workload
        from repro.scenarios.runner import replay_workload

        workload = build_workload(scenario)
        n_packets = workload.n_packets
        program = experiment.system.build_program(model, rules, spec)
        print(f"staged in {time.perf_counter() - started:.1f}s; profiling "
              f"scenario {scenario.name!r} replay ({args.lookup} lookup, "
              f"{workload.n_flows} flows / {n_packets} packets, "
              f"eviction {scenario.eviction})", flush=True)
        replay_started = time.perf_counter()
        profiler.enable()
        replay_workload(program, workload)
        profiler.disable()
        elapsed = time.perf_counter() - replay_started
        labels = {fid: int(workload.soa.labels[fid])
                  for fid in range(workload.n_legit)}
        result = build_replay_result(program.verdicts, labels,
                                     program.recirculation_stats())
        workload.close()
    elif args.online:
        from repro.datasets.streams import iter_packet_chunks
        from repro.online.loop import OnlineProgramFactory
        from repro.serve import create_engine

        dataset = experiment.prepare().dataset
        n_packets = sum(flow.n_packets for flow in dataset.flows)
        chunks = list(iter_packet_chunks(dataset.flows, args.chunk_size))
        swap_chunk = max(1, min(len(chunks) - 1,
                                int(len(chunks) * args.swap_at)))
        factory = OnlineProgramFactory(model, rules, spec.flow_slots)
        serve = create_engine(factory, engine=args.serve_engine,
                              chunk_size=args.chunk_size)
        print(f"staged in {time.perf_counter() - started:.1f}s; profiling "
              f"{args.serve_engine} serve session ({args.lookup} lookup, "
              f"{n_packets} packets, swap at chunk {swap_chunk}/{len(chunks)})",
              flush=True)
        replay_started = time.perf_counter()
        profiler.enable()
        serve.open()
        for index, chunk in enumerate(chunks):
            if index == swap_chunk:
                swap_event = serve.swap_model(factory)
            serve.ingest(chunk)
        result = serve.close()
        profiler.disable()
        elapsed = time.perf_counter() - replay_started
    else:
        dataset = experiment.prepare().dataset
        n_packets = sum(flow.n_packets for flow in dataset.flows)
        program = experiment.system.build_program(model, rules, spec)
        print(f"staged in {time.perf_counter() - started:.1f}s; profiling "
              f"{args.engine} replay ({args.lookup} lookup, {n_packets} "
              f"packets)", flush=True)
        replay_started = time.perf_counter()
        profiler.enable()
        result = replay_dataset(program, dataset, engine=args.engine)
        profiler.disable()
        elapsed = time.perf_counter() - replay_started

    stats = pstats.Stats(profiler)
    print(f"\nreplayed {len(result.verdicts)} verdicts "
          f"(data-plane F1 {result.report.f1_score:.3f})")
    if swap_event is not None:
        print(f"swap : epoch {swap_event.epoch} built in "
              f"{swap_event.latency_s * 1e3:.2f} ms with "
              f"{swap_event.buffered_packets} packets in flight; "
              f"{swap_event.pinned_flows} pinned flows on "
              f"{swap_event.pinned_slots} slots, "
              f"{swap_event.flows_started} flows started")
    stats.sort_stats(args.sort)
    stats.print_stats(args.top)
    if args.out:
        stats.dump_stats(args.out)
        print(f"raw profile written to {args.out}")
    if args.json_out:
        hotspots = []
        stats.sort_stats("cumulative")
        for func in stats.fcn_list[: args.top]:  # type: ignore[attr-defined]
            cc, nc, tt, ct, _callers = stats.stats[func]  # type: ignore[attr-defined]
            filename, line, name = func
            hotspots.append({
                "function": f"{filename}:{line}({name})",
                "ncalls": nc,
                "tottime_s": round(tt, 6),
                "cumtime_s": round(ct, 6),
            })
        summary = {
            "engine": args.serve_engine if args.online else args.engine,
            "mode": ("scenario" if scenario is not None
                     else "online" if args.online else "replay"),
            "scenario": args.scenario,
            "lookup": args.lookup,
            "dataset": spec.dataset,
            "flows": args.flows,
            "depth": args.depth,
            "k": args.k,
            "partitions": args.partitions,
            "seed": args.seed,
            "kernel_backend": kernel_backend(),
            "packets": n_packets,
            "elapsed_s": round(elapsed, 6),
            "packets_per_s": round(n_packets / elapsed, 1) if elapsed > 0 else None,
            "verdicts": len(result.verdicts),
            "f1": round(result.report.f1_score, 6),
            "hotspots": hotspots,
        }
        if swap_event is not None:
            summary["swap"] = {
                "swap_at": args.swap_at,
                "epoch": swap_event.epoch,
                "swap_latency_s": round(swap_event.latency_s, 6),
                "buffered_packets": swap_event.buffered_packets,
                "pinned_flows": swap_event.pinned_flows,
                "pinned_slots": swap_event.pinned_slots,
                "flows_started": swap_event.flows_started,
            }
        payload = json.dumps(summary, indent=2)
        if args.json_out == "-":
            print(payload)
        else:
            Path(args.json_out).write_text(payload + "\n")
            print(f"json summary written to {args.json_out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
